"""The concurrent chaos workload: N sessions, one crash-checkable oracle.

The serial crash matrix (:mod:`repro.faults.harness`) proves recovery when
transactions are strictly sequential.  This workload is its concurrent
counterpart: *n* sessions over one database each run a mixed stream of
trigger-posting transactions while the harness (:mod:`repro.faults.
concurrent`) crashes the "process" at storage failpoints.  The oracle must
therefore accept any interleaving the scheduler produced, which shapes the
transaction design:

* every transaction of session *i* increments **its own account** and the
  **shared account** in the same transaction — so after recovery the
  per-session account value is exactly its count of committed
  transactions, and atomicity across records is checkable globally:
  ``shared.value == sum(account_i.value)`` must hold no matter where the
  crash landed;
* each account value must be the session's ``confirmed`` count or its
  ``pending`` count (commit in flight at the crash) — *per session*,
  because any subset of sessions can be mid-transaction when the process
  dies, but "no committed session's effects are lost" must hold for all;
* every odd transaction enqueues a **phoenix token** with a deterministic
  name, so the recovered settlement ledger must equal the union of each
  session's committed token schedule, each token exactly once;
* transactions post ``Ping``/``Pong`` on shared :class:`~repro.workloads.
  locksim.HotObject` hubs, whose perpetual ``Watch`` triggers write
  persistent TriggerState back — the S→X upgrades supply the lock
  contention (waits, upgrades, deadlock-retries) the matrix is meant to
  crash into.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from repro.errors import DeadlockError
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.workloads.locksim import HotObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database
    from repro.objects.oid import PersistentPtr
    from repro.sessions.scheduler import CooperativeScheduler
    from repro.sessions.session import Session

SHARED_KEY = "chaos:shared"
LEDGER_KEY = "chaos:ledger"
ACCOUNT_KEY = "chaos:acct:{name}"
HUB_KEY = "chaos:hub:{i}"
SETTLE_KIND = "chaos.settle"

N_HUBS = 2


class ChaosAccount(Persistent):
    """A per-session (or the shared) transaction counter."""

    value = field(int, default=0)


class ChaosLedger(Persistent):
    """Application-side record of settled phoenix tokens (exactly-once)."""

    tokens = field(list, default=[])


class ChaosFiller(Persistent):
    """Page-spanning padding so a small disk buffer pool must evict."""

    payload = field(str, default="")


def session_names(n_sessions: int) -> list[str]:
    return [f"s{i}" for i in range(n_sessions)]


def tokens_for(name: str, committed: int) -> list[str]:
    """The phoenix tokens a session enqueued in its first *committed*
    transactions (the deterministic schedule: odd transactions enqueue)."""
    return [f"{name}:{k}" for k in range(committed) if k % 2 == 1]


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SessionModel:
    """Commit progress of one session: txns confirmed vs. in flight."""

    confirmed: int = 0
    pending: int = 0

    def attempt(self) -> None:
        self.pending = self.confirmed + 1

    def confirm(self) -> None:
        self.confirmed = self.pending

    @property
    def acceptable(self) -> tuple[int, ...]:
        if self.pending == self.confirmed:
            return (self.confirmed,)
        return (self.confirmed, self.pending)


class ChaosOracle:
    """What the recovered database must look like, per session.

    Unlike the serial oracle's single confirmed/pending pair, any subset
    of sessions can be mid-commit when the crash lands, so each session
    carries its own pair; the cross-session consistency obligations
    (shared sum, ledger contents) are derived from the per-session actual
    values at verification time.
    """

    def __init__(self, n_sessions: int):
        self.models = {name: SessionModel() for name in session_names(n_sessions)}
        #: "none" → setup not attempted, "pending" → setup txn in flight,
        #: "confirmed" → setup committed.  The setup is one transaction,
        #: so the recovered catalog has either all chaos keys or none.
        self.setup = "none"

    def attempt_setup(self) -> None:
        self.setup = "pending"

    def confirm_setup(self) -> None:
        self.setup = "confirmed"


# ---------------------------------------------------------------------------
# Setup and per-session programs
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ChaosFixture:
    """Pointers the session programs operate on."""

    accounts: dict[str, "PersistentPtr"]
    shared: "PersistentPtr"
    ledger_rid: int
    hubs: list["PersistentPtr"]


def settle_handler(db: "Database") -> Callable:
    """The idempotent phoenix executor: settle a token at most once."""
    from repro.objects.oid import PersistentPtr

    def settle(txn, payload):
        ledger = db.deref(PersistentPtr(db.name, payload["ledger"]))
        token = payload["token"]
        if token not in ledger.tokens:
            ledger.tokens = ledger.tokens + [token]

    return settle


def setup_chaos(
    db: "Database", oracle: ChaosOracle, n_sessions: int, *, fillers: int = 6
) -> ChaosFixture:
    """Create accounts, hubs (with Watch triggers), and the ledger.

    Two transactions: one atomic create (the oracle's all-or-nothing
    setup), then a filler touch that dirties several pages without
    changing modelled state — the same eviction pressure the serial
    harness applies.
    """
    manager = db.txn_manager
    txn = manager.begin()
    accounts: dict[str, "PersistentPtr"] = {}
    for name in session_names(n_sessions):
        handle = db.pnew(ChaosAccount)
        db.catalog_set(txn, ACCOUNT_KEY.format(name=name), handle.ptr.rid)
        accounts[name] = handle.ptr
    shared = db.pnew(ChaosAccount)
    db.catalog_set(txn, SHARED_KEY, shared.ptr.rid)
    ledger = db.pnew(ChaosLedger)
    db.catalog_set(txn, LEDGER_KEY, ledger.ptr.rid)
    hubs = []
    for i in range(N_HUBS):
        hub = db.pnew(HotObject)
        hub.Watch()
        db.catalog_set(txn, HUB_KEY.format(i=i), hub.ptr.rid)
        hubs.append(hub.ptr)
    filler_ptrs = [
        db.pnew(ChaosFiller, payload=f"filler-{i}-" + "x" * 1500).ptr
        for i in range(fillers)
    ]
    fixture = ChaosFixture(
        accounts=accounts,
        shared=shared.ptr,
        ledger_rid=ledger.ptr.rid,
        hubs=hubs,
    )
    oracle.attempt_setup()
    manager.commit(txn)
    oracle.confirm_setup()

    txn = manager.begin()
    for ptr in filler_ptrs:
        db.deref(ptr).payload = "touched-" + "y" * 1500
    manager.commit(txn)  # no modelled state changes: crash here matches setup
    return fixture


def drain_retrying(db: "Database", scheduler: "CooperativeScheduler | None") -> int:
    """Drain phoenix intentions, retrying drain-internal deadlocks.

    Concurrent drains contend on the intention queue and the ledger; a
    deadlock victim inside :meth:`PhoenixQueue.drain` aborted its system
    transaction (the intention stays queued), so draining again is safe —
    and deterministic under a cooperative scheduler (threaded callers back
    off with a tiny sleep instead).
    """
    import time

    for attempt in range(10):
        try:
            return db.phoenix.drain()
        except DeadlockError:
            if scheduler is not None:
                scheduler.yield_now()
            else:
                time.sleep(0.001)
    raise AssertionError("phoenix drain kept deadlocking")  # pragma: no cover


def chaos_program(
    session: "Session",
    oracle: ChaosOracle,
    fixture: ChaosFixture,
    *,
    n_txns: int,
    scheduler: "CooperativeScheduler | None" = None,
    retries: int = 50,
    deadline: float | None = None,
) -> Callable[[], int]:
    """Build session *name*'s program: *n_txns* mixed transactions.

    Transaction *k*: increment the own account and the shared account,
    post ``Ping``/``Pong`` on hub ``(index + k) % N_HUBS``, and on odd *k*
    enqueue the phoenix token ``f"{name}:{k}"`` — then drain.  The oracle
    attempt happens at the end of the body (just before commit), the
    confirm after :meth:`Session.run` returns.
    """
    db = session.db
    name = session.name
    model = oracle.models[name]
    index = int(name[1:])

    def maybe_yield() -> None:
        if scheduler is not None:
            scheduler.yield_now()

    def program() -> int:
        # The drain between transactions begins a *system* transaction,
        # which resolves the calling thread's ambient session; on a bare
        # thread that would fall back to the shared default session and
        # concurrent drains would collide (NestedTransactionError).  Bind
        # the whole program to its own session instead.
        from repro.sessions.session import ambient_session

        with ambient_session(session):
            return _program_body()

    def _program_body() -> int:
        for k in range(n_txns):
            token = f"{name}:{k}" if k % 2 == 1 else None

            def body(txn, k=k, token=token):
                own = session.deref(fixture.accounts[name])
                own.value = own.value + 1
                maybe_yield()
                shared = session.deref(fixture.shared)
                shared.value = shared.value + 1
                maybe_yield()
                hub = session.deref(fixture.hubs[(index + k) % N_HUBS])
                hub.post_event("Ping")
                hub.post_event("Pong")
                maybe_yield()
                if token is not None:
                    db.phoenix.enqueue(
                        txn, SETTLE_KIND, {"ledger": fixture.ledger_rid, "token": token}
                    )
                model.attempt()

            session.run(body, retries=retries, deadline=deadline)
            model.confirm()
            if token is not None:
                drain_retrying(db, scheduler)
            maybe_yield()
        session.close()
        return n_txns

    return program
