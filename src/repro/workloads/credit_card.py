"""The paper's Section 4 credit-card monitoring domain.

``CredCard`` is a line-for-line transliteration of the paper's class::

    persistent class CredCard {
        persistent Customer *issuedTo;
        float credLim, currBal;
        ...
        event after Buy, after PayBill, BigBuy;
        trigger DenyCredit() : perpetual
            after Buy & (currBal > credLim)
            ==> { BlackMark("Over Limit", today()); tabort; }
        trigger AutoRaiseLimit(float amount) :
            relative((after Buy & MoreCred()), after PayBill)
            ==> RaiseLimit(amount);
    };

plus the supporting ``Customer`` and ``Merchant`` classes and a seeded
workload driver used by the fraud example and experiments E3/E5/E6.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING

from repro.core.declarations import trigger
from repro.objects.oid import NULL_PTR, PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.schema import field

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class Customer(Persistent):
    """A bank customer."""

    name = field(str, default="")
    address = field(str, default="")


class Merchant(Persistent):
    """A store purchases are made at."""

    name = field(str, default="")
    category = field(str, default="retail")


def _deny_credit(self, ctx) -> None:
    """The DenyCredit action: black-mark the attempt and abort (tabort)."""
    self.black_mark("Over Limit")
    ctx.tabort("credit limit exceeded")


class CredCard(Persistent):
    """The paper's credit card with its two triggers."""

    issued_to = field(PersistentPtr, default=NULL_PTR)
    cred_lim = field(float, default=1000.0)
    curr_bal = field(float, default=0.0)
    black_marks = field(list, default=[])
    purchases = field(int, default=0)

    __events__ = ["after buy", "after pay_bill", "BigBuy"]
    __masks__ = {
        "over_limit": lambda self: self.curr_bal > self.cred_lim,
        "MoreCred": lambda self: self.more_cred(),
    }
    # All three triggers acknowledge the `lint --concurrency` findings:
    # posting the read-only BigBuy user event still rewinds/advances these
    # machines, so readers take X on TriggerStates (ODE300 — exactly the
    # Section 6 amplification experiment E6 measures on this workload),
    # and the state write-back plus the actions' balance writes carry the
    # upgrade and lock-order deadlock exposure (ODE301/ODE302).  This
    # workload exists to *exhibit* that cost, so the findings are
    # intended, not defects.
    _CONCURRENCY_OK = ("ODE300", "ODE301", "ODE302")
    __triggers__ = [
        trigger(
            "DenyCredit",
            "after buy & over_limit",
            action=_deny_credit,
            perpetual=True,
            suppress=_CONCURRENCY_OK,
        ),
        trigger(
            "AutoRaiseLimit",
            "relative((after buy & MoreCred), after pay_bill)",
            action="raise_limit",
            params=("amount",),
            suppress=_CONCURRENCY_OK,
        ),
        # The intentional cascade: paying down an over-limit balance posts
        # `after pay_bill`, which re-arms this very trigger.  The cycle is
        # predicate-guarded — it stops as soon as `over_limit` goes false,
        # i.e. after finitely many paydowns — which the termination pass
        # classifies as ODE201 (guarded), not ODE030/ODE200 (irrefutable);
        # the suppression records that the guard has been reviewed.
        trigger(
            "AutoPayDown",
            "after pay_bill & over_limit",
            action="pay_bill",
            params=("amount",),
            perpetual=True,
            suppress=("ODE201",) + _CONCURRENCY_OK,
        ),
    ]

    # -- member functions (the declared events wrap these) ----------------------

    def buy(self, store: PersistentPtr | None, amount: float) -> None:
        """Record a purchase (posts ``after buy`` via a persistent handle)."""
        self.curr_bal += amount
        self.purchases += 1

    def pay_bill(self, amount: float) -> None:
        """Pay down the balance (posts ``after pay_bill``)."""
        self.curr_bal -= amount

    def raise_limit(self, amount: float) -> None:
        """AutoRaiseLimit's action body."""
        self.cred_lim += amount

    def good_cred_hist(self) -> bool:
        return not self.black_marks

    def more_cred(self) -> bool:
        """The paper's MoreCred(): near the limit with a clean history."""
        return self.curr_bal > 0.8 * self.cred_lim and self.good_cred_hist()

    def black_mark(self, problem: str) -> None:
        self.black_marks = self.black_marks + [problem]


@dataclasses.dataclass
class WorkloadResult:
    """Outcome counters from one workload run."""

    operations: int = 0
    buys: int = 0
    payments: int = 0
    queries: int = 0
    denied: int = 0


class CreditCardWorkload:
    """Seeded population + operation-mix driver over ``CredCard`` objects.

    The mix defaults to 60% buys / 30% payments / 10% balance queries with
    log-normal-ish purchase amounts — enough buys to push cards toward
    their limits so the triggers actually exercise.
    """

    def __init__(
        self,
        seed: int = 1996,
        buy_fraction: float = 0.6,
        pay_fraction: float = 0.3,
    ):
        if buy_fraction + pay_fraction > 1.0:
            raise ValueError("operation fractions exceed 1.0")
        self.rng = random.Random(seed)
        self.buy_fraction = buy_fraction
        self.pay_fraction = pay_fraction

    # -- population -----------------------------------------------------------

    def setup(
        self,
        db: "Database",
        n_cards: int,
        cred_lim: float = 1000.0,
        activate_deny: bool = False,
        activate_raise: bool = False,
    ) -> list[PersistentPtr]:
        """Create *n_cards* cards (optionally with triggers activated)."""
        ptrs: list[PersistentPtr] = []
        with db.transaction():
            for i in range(n_cards):
                customer = db.pnew(Customer, name=f"customer-{i}")
                card = db.pnew(
                    CredCard, issued_to=customer.ptr, cred_lim=cred_lim
                )
                if activate_deny:
                    card.DenyCredit()
                if activate_raise:
                    card.AutoRaiseLimit(cred_lim * 0.5)
                ptrs.append(card.ptr)
        return ptrs

    # -- operations --------------------------------------------------------------

    def run(
        self,
        db: "Database",
        ptrs: list[PersistentPtr],
        n_ops: int,
        ops_per_txn: int = 1,
    ) -> WorkloadResult:
        """Execute *n_ops* operations over the cards; returns counters."""
        from repro.errors import TransactionAbort

        result = WorkloadResult()
        remaining = n_ops
        while remaining > 0:
            batch = min(ops_per_txn, remaining)
            remaining -= batch
            try:
                with db.transaction():
                    for _ in range(batch):
                        self._one_op(db, ptrs, result)
            except TransactionAbort:
                pass  # DenyCredit aborted the batch
        return result

    def _one_op(self, db: "Database", ptrs, result: WorkloadResult) -> None:
        from repro.errors import TransactionAbort

        card = db.deref(self.rng.choice(ptrs))
        roll = self.rng.random()
        result.operations += 1
        if roll < self.buy_fraction:
            amount = round(self.rng.uniform(5.0, 400.0), 2)
            result.buys += 1
            try:
                card.buy(None, amount)
            except TransactionAbort:
                result.denied += 1
                raise  # DenyCredit aborts the whole batch, as tabort must
        elif roll < self.buy_fraction + self.pay_fraction:
            amount = round(max(card.curr_bal, 0.0) * self.rng.uniform(0.2, 1.0), 2)
            card.pay_bill(amount)
            result.payments += 1
        else:
            _ = card.curr_bal  # read-only balance query
            result.queries += 1
