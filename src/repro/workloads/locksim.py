"""Multi-session lock-contention workload for the E6 study.

Section 6: "triggers turn read access into write access, increasing both
the amount of time the transactions spend waiting for locks and the
likelihood of deadlock."

Earlier revisions replayed synthetic lock *traces* against a bare
:class:`~repro.storage.locks.LockManager`.  Now that the engine supports
concurrent sessions, the workload drives the real system end to end: N
sessions over one shared database, interleaved deterministically by a
:class:`~repro.sessions.scheduler.CooperativeScheduler`, each running
read-only transactions over a small hot set of :class:`HotObject`\\ s.

The client code is *identical* in both configurations — dereference an
object, read a field, post its observation events.  The only difference is
whether ``Watch`` triggers were activated on the hot set:

* no triggers: each posting short-circuits on the control-information flag
  (footnote 3), so a transaction acquires only S locks — share-everything,
  zero waits, zero deadlocks;
* with triggers: ``Watch`` detects ``relative(Ping, Pong)``, whose FSM
  changes state on **every** posting, so every posting writes the
  persistent TriggerState back — the read-only transaction now takes X
  locks (one per active trigger per posting), and waiting and deadlock
  follow.  Deadlock victims abort and retry through
  :meth:`~repro.sessions.session.Session.run`.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import random
import shutil
import tempfile
from typing import TYPE_CHECKING

from repro import obs
from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.sessions.scheduler import CooperativeScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.oid import PersistentPtr


def _observe(self, ctx) -> None:
    """Watch's action: pure observation — the amplification under study is
    the TriggerState writes, so the action itself must not write."""


class HotObject(Persistent):
    """One member of the hot set.

    ``Watch`` detects ``relative(Ping, Pong)``: its two-state FSM flips on
    every posting (armed by ``Ping``, fired and re-armed by ``Pong``), so a
    transaction that posts the ``Ping``/``Pong`` pair writes each active
    TriggerState twice — deterministic per-posting write amplification
    regardless of how sessions interleave.
    """

    value = field(int, default=0)

    __events__ = ["Ping", "Pong"]
    __triggers__ = [
        trigger("Watch", "relative(Ping, Pong)", action=_observe, perpetual=True),
    ]


def setup_hot_set(
    db: "Database", n_objects: int, triggers_per_object: int
) -> list["PersistentPtr"]:
    """Create the hot set and activate *triggers_per_object* Watches each."""
    with db.transaction():
        ptrs = []
        for _ in range(n_objects):
            handle = db.pnew(HotObject)
            for _ in range(triggers_per_object):
                handle.Watch()
            ptrs.append(handle.ptr)
    return ptrs


@dataclasses.dataclass
class WorkloadResult:
    """Aggregate outcome of one multi-session run (all figures are deltas
    measured across the run, excluding setup)."""

    committed: int = 0
    deadlock_aborts: int = 0
    s_locks: int = 0
    x_locks: int = 0
    upgrades: int = 0
    lock_waits: int = 0
    state_writes: int = 0
    switches: int = 0
    # MVCC-only figures (zero under the 2PL baseline):
    buffered_advances: int = 0
    merges: int = 0
    conflicts: int = 0
    replays: int = 0
    conflict_retries: int = 0

    @property
    def wait_fraction(self) -> float:
        total = self.s_locks + self.x_locks
        return self.lock_waits / total if total else 0.0

    def key(self) -> tuple:
        """Everything, as a tuple — for determinism assertions."""
        return dataclasses.astuple(self)


_run_ids = itertools.count(1)


def run_hot_set(
    n_objects: int,
    triggers_per_object: int,
    *,
    n_sessions: int,
    transactions: int,
    ops_per_txn: int = 4,
    seed: int = 1996,
    retries: int = 50,
    engine: str = "mm",
    path: str | None = None,
    trace_out: list | None = None,
    trigger_cc: str = "2pl",
) -> WorkloadResult:
    """Run the hot-set workload on a fresh database; returns the result.

    *transactions* are divided round-robin over *n_sessions* session tasks
    under a cooperative scheduler, so a given parameter set always produces
    the same interleaving, the same lock schedule, and the same result.

    *trigger_cc* selects the TriggerState concurrency-control scheme
    (DESIGN.md §15): ``"2pl"`` is the paper's baseline — every FSM advance
    X-locks and rewrites the state record; ``"mvcc"`` buffers advances
    against copy-on-write versions and merges them at commit, so the same
    client code takes zero X locks on trigger state.

    When *trace_out* is a list, :mod:`repro.obs` tracing is enabled for the
    measured phase only (setup transactions predict nothing the per-posting
    footprints model) and the captured records are appended to it — the
    input of the ODE310 dynamic lockset checker
    (:func:`repro.analysis.check_lock_trace`).
    """
    workdir = None
    if path is None:
        # The engines persist durability files beside the database path, so
        # an anonymous run gets a temporary directory of its own.
        workdir = tempfile.mkdtemp(prefix="locksim-")
        path = os.path.join(workdir, f"hotset-{next(_run_ids)}")
    db = Database.open(path, engine=engine, trigger_cc=trigger_cc)
    tracing = False
    try:
        ptrs = setup_hot_set(db, n_objects, triggers_per_object)
        if trace_out is not None:
            obs.enable()
            tracing = True

        lock_stats = db.storage.lock_manager.stats
        post_stats = db.trigger_system.stats
        mvcc_stats = getattr(db.trigger_system.versions, "stats", None)
        locks_before = lock_stats.snapshot()
        posts_before = post_stats.snapshot()
        mvcc_before = mvcc_stats.snapshot() if mvcc_stats is not None else {}
        retries_before = db.session_stats.deadlock_retries
        conflict_retries_before = db.session_stats.conflict_retries

        scheduler = CooperativeScheduler()
        result = WorkloadResult()

        def make_program(session, task_index: int, n_txns: int):
            rng = random.Random(seed * 31 + task_index)

            def program():
                for _ in range(n_txns):
                    picks = [rng.randrange(n_objects) for _ in range(ops_per_txn)]

                    def body(txn, picks=picks):
                        for obj_index in picks:
                            handle = session.deref(ptrs[obj_index])
                            _ = handle.value  # the ostensibly read-only access
                            handle.post_event("Ping")
                            handle.post_event("Pong")
                            scheduler.yield_now()

                    session.run(body, retries=retries)
                    result.committed += 1
                    scheduler.yield_now()
                session.close()

            return program

        base = transactions // n_sessions
        extra = transactions % n_sessions
        for i in range(n_sessions):
            n_txns = base + (1 if i < extra else 0)
            session = db.session(f"client-{i}")
            scheduler.spawn(
                make_program(session, i, n_txns),
                name=f"client-{i}",
                session=session,
            )
        scheduler.run()

        result.deadlock_aborts = lock_stats.deadlocks - locks_before["deadlocks"]
        result.s_locks = lock_stats.s_acquired - locks_before["s_acquired"]
        result.x_locks = lock_stats.x_acquired - locks_before["x_acquired"]
        result.upgrades = lock_stats.upgrades - locks_before["upgrades"]
        result.lock_waits = lock_stats.waits - locks_before["waits"]
        result.state_writes = post_stats.snapshot()["state_writes"] - posts_before[
            "state_writes"
        ]
        result.switches = scheduler.switches
        if mvcc_stats is not None:
            after = mvcc_stats.snapshot()
            result.buffered_advances = (
                after["buffered_advances"] - mvcc_before["buffered_advances"]
            )
            result.merges = after["merges"] - mvcc_before["merges"]
            result.conflicts = after["conflicts"] - mvcc_before["conflicts"]
            result.replays = after["replays"] - mvcc_before["replays"]
            result.conflict_retries = (
                db.session_stats.conflict_retries - conflict_retries_before
            )
        assert (
            db.session_stats.deadlock_retries - retries_before
            == result.deadlock_aborts
        ), "every deadlock abort must be retried (none exhausted its budget)"
        if tracing:
            recorder = obs.disable()
            tracing = False
            if recorder is not None:
                trace_out.extend(recorder.records())
        return result
    finally:
        if tracing:
            obs.disable()
        db.close()
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)
