"""Interleaved-transaction lock simulator for the E6 study.

Section 6: "triggers turn read access into write access, increasing both
the amount of time the transactions spend waiting for locks and the
likelihood of deadlock."  The single-session database never has two
transactions in flight, so contention is studied here: logical clients
replay lock-request traces against one :class:`~repro.storage.locks.
LockManager` under round-robin scheduling with strict 2PL (all locks
released at end of transaction), blocked-client queuing, and
deadlock-victim abort/retry.

The traces are the exact request sequences the real system issues:
``trace_for_read`` mirrors a read of an object without triggers (one S
lock); ``trace_for_read_with_triggers`` mirrors the same read when the
posting path advances N trigger FSMs (S on the object, then X on each
trigger-state record and on the shared index bucket — the write locks the
paper warns about).
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

from repro.errors import DeadlockError
from repro.storage.locks import LockManager, LockMode, LockRequestStatus


@dataclasses.dataclass(frozen=True)
class LockStep:
    """One lock request in a transaction's trace."""

    resource: object
    mode: LockMode


def trace_for_read(obj_id: int) -> list[LockStep]:
    """Lock trace of reading a trigger-free object."""
    return [LockStep(("obj", obj_id), LockMode.S)]


def trace_for_read_with_triggers(
    obj_id: int, trigger_states: Sequence[int], index_bucket: int
) -> list[LockStep]:
    """Lock trace of reading an object whose access posts events.

    The read itself is shared; advancing each trigger's FSM updates its
    persistent TriggerState (exclusive), after an index-bucket read.
    """
    steps = [
        LockStep(("obj", obj_id), LockMode.S),
        LockStep(("idx", index_bucket), LockMode.S),
    ]
    for state_id in trigger_states:
        steps.append(LockStep(("tstate", state_id), LockMode.X))
    return steps


@dataclasses.dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    completed: int = 0
    aborted_deadlock: int = 0
    wait_steps: int = 0
    total_steps: int = 0
    s_locks: int = 0
    x_locks: int = 0

    @property
    def wait_fraction(self) -> float:
        return self.wait_steps / self.total_steps if self.total_steps else 0.0


class _Client:
    def __init__(self, client_id: int, rng: random.Random):
        self.client_id = client_id
        self.rng = rng
        self.txid = client_id * 1_000_000
        self.trace: list[LockStep] = []
        self.position = 0
        self.blocked = False

    def new_transaction(self, trace: list[LockStep]) -> None:
        self.txid += 1
        self.trace = trace
        self.position = 0
        self.blocked = False

    @property
    def done(self) -> bool:
        return self.position >= len(self.trace)


class LockTraceSimulator:
    """Round-robin interleaving of lock-trace transactions."""

    def __init__(
        self,
        make_trace,
        n_clients: int,
        seed: int = 1996,
    ):
        """*make_trace(rng)* returns the lock trace for a fresh transaction."""
        self.make_trace = make_trace
        self.rng = random.Random(seed)
        self.locks = LockManager()
        self.clients = [
            _Client(i + 1, random.Random(seed * 31 + i)) for i in range(n_clients)
        ]
        for client in self.clients:
            client.new_transaction(self.make_trace(client.rng))
        self.result = SimulationResult()

    def run(self, total_transactions: int, max_rounds: int = 1_000_000) -> SimulationResult:
        """Run until *total_transactions* have committed (or aborted)."""
        finished = 0
        rounds = 0
        while finished < total_transactions and rounds < max_rounds:
            rounds += 1
            progressed = False
            for client in self.clients:
                if finished >= total_transactions:
                    break
                step_result = self._step(client)
                if step_result == "committed":
                    finished += 1
                    self.result.completed += 1
                    client.new_transaction(self.make_trace(client.rng))
                    progressed = True
                elif step_result == "aborted":
                    finished += 1
                    self.result.aborted_deadlock += 1
                    client.new_transaction(self.make_trace(client.rng))
                    progressed = True
                elif step_result == "advanced":
                    progressed = True
            if not progressed:
                # Everyone blocked with no cycle would be a scheduler bug:
                # retry the queues once; if still stuck, report loudly.
                if not self.locks.retry_waiters():
                    raise RuntimeError("lock simulation wedged with no deadlock")
        return self.result

    def _step(self, client: _Client) -> str:
        if client.done:
            self.locks.release_all(client.txid)  # strict 2PL release point
            return "committed"
        step = client.trace[client.position]
        self.result.total_steps += 1
        if client.blocked:
            # Re-attempt the queued request.
            granted = self.locks.retry_waiters()
            if client.txid not in granted and self.locks.mode_held(
                client.txid, step.resource
            ) is None:
                self.result.wait_steps += 1
                return "waiting"
            client.blocked = False
            client.position += 1
            self._count(step.mode)
            return "advanced"
        try:
            status = self.locks.acquire(client.txid, step.resource, step.mode)
        except DeadlockError:
            self.locks.release_all(client.txid)
            return "aborted"
        if status is LockRequestStatus.GRANTED:
            client.position += 1
            self._count(step.mode)
            return "advanced"
        client.blocked = True
        self.result.wait_steps += 1
        return "waiting"

    def _count(self, mode: LockMode) -> None:
        if mode is LockMode.S:
            self.result.s_locks += 1
        else:
            self.result.x_locks += 1


def hot_set_workload(
    n_objects: int,
    triggers_per_object: int,
    ops_per_txn: int = 4,
    index_buckets: int = 8,
):
    """Build a ``make_trace`` over a hot set of objects.

    With ``triggers_per_object == 0`` the workload is read-only (pure S
    locks); otherwise every read drags in X locks on the object's trigger
    states — the amplification under study.
    """

    def make_trace(rng: random.Random) -> list[LockStep]:
        steps: list[LockStep] = []
        for _ in range(ops_per_txn):
            obj_id = rng.randrange(n_objects)
            if triggers_per_object == 0:
                steps.extend(trace_for_read(obj_id))
            else:
                states = [
                    obj_id * 100 + t for t in range(triggers_per_object)
                ]
                steps.extend(
                    trace_for_read_with_triggers(
                        obj_id, states, obj_id % index_buckets
                    )
                )
        return steps

    return make_trace
