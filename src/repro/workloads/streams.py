"""Seeded event-symbol streams for the detection experiments.

``generate_stream`` produces reproducible sequences over an alphabet with a
choice of distributions:

* ``uniform`` — every symbol equally likely,
* ``zipf`` — rank-skewed (parameter ``s``), the usual model for hot-key
  event traffic,
* ``bursty`` — runs of one symbol with geometric lengths, stressing
  detectors whose partial-match state accumulates.
"""

from __future__ import annotations

import random
from collections.abc import Sequence


def generate_stream(
    symbols: Sequence[str],
    length: int,
    seed: int = 1996,
    dist: str = "uniform",
    zipf_s: float = 1.5,
    burst_continue: float = 0.7,
) -> list[str]:
    """A reproducible stream of *length* symbols from *symbols*."""
    if not symbols:
        raise ValueError("need a non-empty alphabet")
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = random.Random(seed)
    pool = list(symbols)

    if dist == "uniform":
        return [rng.choice(pool) for _ in range(length)]

    if dist == "zipf":
        weights = [1.0 / (rank**zipf_s) for rank in range(1, len(pool) + 1)]
        return rng.choices(pool, weights=weights, k=length)

    if dist == "bursty":
        stream: list[str] = []
        current = rng.choice(pool)
        for _ in range(length):
            stream.append(current)
            if rng.random() >= burst_continue:
                current = rng.choice(pool)
        return stream

    raise ValueError(f"unknown distribution {dist!r} (uniform/zipf/bursty)")


def interleave_pattern(
    background: list[str],
    pattern: Sequence[str],
    every: int,
) -> list[str]:
    """Splice *pattern* into *background* every *every* positions.

    Guarantees the detectors have real matches to find at a known rate.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    result: list[str] = []
    for index, symbol in enumerate(background):
        result.append(symbol)
        if (index + 1) % every == 0:
            result.extend(pattern)
    return result
