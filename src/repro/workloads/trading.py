"""The program-trading domain (paper Sections 1 and 8).

The introduction motivates composite events with "applications such as
program trading whose actions are triggered based on patterns of event
occurrences as opposed to single basic events", and Section 8's future-work
example is the inter-object trigger "if AT&T goes below 60 and the price of
gold stabilizes, buy 1000 shares of AT&T".

:class:`Stock` carries the price-movement events and masks those patterns
need; :class:`Portfolio` holds positions; :class:`TickStream` generates a
seeded random-walk price feed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.schema import field

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.database import Database


class Stock(Persistent):
    """One listed security with a two-tick price memory."""

    symbol = field(str, default="")
    price = field(float, default=0.0)
    prev_price = field(float, default=0.0)
    prev_prev_price = field(float, default=0.0)

    __events__ = ["after set_price", "Halted"]
    __masks__ = {
        "rising": lambda self: self.price > self.prev_price,
        "falling": lambda self: self.price < self.prev_price,
        "stable": lambda self: self.prev_price != 0.0
        and abs(self.price - self.prev_price) / self.prev_price < 0.005,
    }

    def set_price(self, price: float) -> None:
        """Apply one tick (posts ``after set_price``)."""
        self.prev_prev_price = self.prev_price
        self.prev_price = self.price
        self.price = price

    def two_tick_drop(self) -> bool:
        return self.price < self.prev_price < self.prev_prev_price


class Portfolio(Persistent):
    """Positions held by a trading program."""

    owner = field(str, default="")
    cash = field(float, default=0.0)
    positions = field(dict, default={})
    trade_log = field(list, default=[])

    __events__ = ["after buy_shares", "after sell_shares"]

    def buy_shares(self, symbol: str, shares: int, price: float) -> None:
        cost = shares * price
        self.cash -= cost
        positions = dict(self.positions)
        positions[symbol] = positions.get(symbol, 0) + shares
        self.positions = positions
        self.trade_log = self.trade_log + [f"BUY {shares} {symbol} @ {price:.2f}"]

    def sell_shares(self, symbol: str, shares: int, price: float) -> None:
        positions = dict(self.positions)
        held = positions.get(symbol, 0)
        if held < shares:
            raise ValueError(f"cannot sell {shares} {symbol}; hold {held}")
        positions[symbol] = held - shares
        self.positions = positions
        self.cash += shares * price
        self.trade_log = self.trade_log + [f"SELL {shares} {symbol} @ {price:.2f}"]


class TickStream:
    """Seeded geometric random-walk price feed for a set of symbols."""

    def __init__(
        self,
        symbols: dict[str, float],
        seed: int = 1996,
        volatility: float = 0.01,
        drift: float = 0.0,
    ):
        self.rng = random.Random(seed)
        self.prices = dict(symbols)
        self.volatility = volatility
        self.drift = drift

    def next_tick(self) -> tuple[str, float]:
        """Pick a symbol, move its price one step, return (symbol, price)."""
        symbol = self.rng.choice(sorted(self.prices))
        move = self.rng.gauss(self.drift, self.volatility)
        price = max(0.01, self.prices[symbol] * (1.0 + move))
        self.prices[symbol] = price
        return symbol, round(price, 2)

    def ticks(self, count: int):
        for _ in range(count):
            yield self.next_tick()

    def apply(
        self,
        db: "Database",
        stocks: dict[str, PersistentPtr],
        count: int,
        ticks_per_txn: int = 10,
    ) -> int:
        """Drive *count* ticks into the database; returns ticks applied."""
        applied = 0
        while applied < count:
            batch = min(ticks_per_txn, count - applied)
            with db.transaction():
                for _ in range(batch):
                    symbol, price = self.next_tick()
                    db.deref(stocks[symbol]).set_price(price)
                    applied += 1
        return applied
