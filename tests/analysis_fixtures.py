"""Deliberately-defective trigger declarations for the static analyzer.

Each class (or hand-built machine) here seeds exactly one kind of finding,
and the test suite asserts the analyzer reports it with the expected
stable code.  The module doubles as a CLI fixture:

    python -m repro.analysis tests/analysis_fixtures.py

must report every finding listed below (the CLI picks up the classes via
the process type registry and the raw machines via
``__analysis_machines__``).

Expected findings:

==============================  =======
fixture                         code
==============================  =======
BadVacuousMask.Gated            ODE010
BadUnusedMask.Checked           ODE011
BadSubsumedPair.Narrow          ODE020
BadIdenticalPair.First          ODE021
BadImmediateCascade (pair)      ODE030
BadDeferredCascade (pair)       ODE031
BadGhostPoster.Ghost            ODE032
BadDetachedAbort.Abort          ODE040
BadDeferredCommitWatch.Late     ODE041
machine "unreachable-state"     ODE001
machine "trap-state"            ODE002
machine "never-accepts"         ODE003
machine "vacuous-mask"          ODE010
==============================  =======

``CleanIncomparablePair`` and ``CleanOnceOnlyCycle`` are control groups:
superficially similar declarations the analyzer must stay quiet about.
"""

from __future__ import annotations

from repro.core.declarations import trigger
from repro.events.fsm import Fsm, FsmState
from repro.objects.persistent import Persistent
from repro.objects.schema import field


def _noop(self, ctx) -> None:
    pass


class BadVacuousMask(Persistent):
    """Once-only trigger whose mask only runs after acceptance is decided.

    ``Ping || (Ping & maybe)``: the plain ``Ping`` branch accepts first, so
    ``maybe`` is only ever evaluated in an accept state — the trigger fires
    and deactivates regardless of the predicate.
    """

    counter = field(int, default=0)
    __events__ = ["Ping"]
    __masks__ = {"maybe": lambda self: self.counter > 0}
    __triggers__ = [trigger("Gated", "Ping || (Ping & maybe)", action=_noop)]


class BadUnusedMask(Persistent):
    """Trigger-level mask predicate the expression never names."""

    counter = field(int, default=0)
    __events__ = ["Tick"]
    __triggers__ = [
        trigger(
            "Checked",
            "Tick",
            action=_noop,
            masks={"threshold": lambda self: self.counter > 10},
        )
    ]


class BadSubsumedPair(Persistent):
    """``Narrow`` (``Pay & big``) is language-included in ``Broad`` (``Pay``)."""

    amount = field(float, default=0.0)
    __events__ = ["Pay", "Refund"]
    __masks__ = {"big": lambda self: self.amount > 100.0}
    __triggers__ = [
        trigger("Narrow", "Pay & big", action=_noop, perpetual=True),
        trigger("Broad", "Pay", action=_noop, perpetual=True),
    ]


class BadIdenticalPair(Persistent):
    """Two triggers accepting exactly the same event sequences."""

    __events__ = ["Open", "Close"]
    __triggers__ = [
        trigger("First", "Open, Close", action=_noop),
        trigger("Second", "Open, Close", action=_noop),
    ]


class BadImmediateCascade(Persistent):
    """Perpetual immediate triggers that re-post each other's events."""

    __events__ = ["PingEvent", "PongEvent"]
    __triggers__ = [
        trigger(
            "Ping2Pong", "PingEvent", action=_noop, perpetual=True,
            posts=("PongEvent",),
        ),
        trigger(
            "Pong2Ping", "PongEvent", action=_noop, perpetual=True,
            posts=("PingEvent",),
        ),
    ]


class BadDeferredCascade(Persistent):
    """The same cycle, but one link is deferred: loops across transactions."""

    __events__ = ["Submit", "Review"]
    __triggers__ = [
        trigger(
            "Submit2Review", "Submit", action=_noop, perpetual=True,
            coupling="end", posts=("Review",),
        ),
        trigger(
            "Review2Submit", "Review", action=_noop, perpetual=True,
            posts=("Submit",),
        ),
    ]


class BadGhostPoster(Persistent):
    """``posts`` names a user event nobody declares."""

    __events__ = ["Kick"]
    __triggers__ = [
        trigger("Ghost", "Kick", action=_noop, posts=("NoSuchEvent",))
    ]


def _detached_abort(self, ctx) -> None:
    ctx.tabort("too late to matter")


class BadDetachedAbort(Persistent):
    """``tabort`` from a ``!dependent`` action aborts the wrong transaction."""

    __events__ = ["Oops"]
    __triggers__ = [
        trigger(
            "Abort", "Oops", action=_detached_abort, coupling="!dependent",
            perpetual=True,
        )
    ]


class BadDeferredCommitWatch(Persistent):
    """Deferred trigger anchored on the commit event it races against."""

    __events__ = ["before tcomplete"]
    __triggers__ = [
        trigger(
            "Late", "before tcomplete", action=_noop, coupling="end",
            perpetual=True,
        )
    ]


# -- control groups: similar shapes the analyzer must accept -----------------


class CleanIncomparablePair(Persistent):
    """Two triggers on disjoint events: no inclusion either way."""

    __events__ = ["Deposit", "Withdraw"]
    __triggers__ = [
        trigger("OnDeposit", "Deposit", action=_noop, perpetual=True),
        trigger("OnWithdraw", "Withdraw", action=_noop, perpetual=True),
    ]


class CleanOnceOnlyCycle(Persistent):
    """A posting cycle broken by a once-only trigger: self-limiting."""

    __events__ = ["Ask", "Answer"]
    __triggers__ = [
        trigger("Ask2Answer", "Ask", action=_noop, posts=("Answer",)),
        trigger(
            "Answer2Ask", "Answer", action=_noop, perpetual=True,
            posts=("Ask",),
        ),
    ]


class CleanSuppressedPair(Persistent):
    """A deliberate escalation pair with the overlap acknowledged."""

    count = field(int, default=0)
    __events__ = ["Hit"]
    __triggers__ = [
        trigger("AlertOnce", "Hit, Hit", action=_noop, perpetual=True),
        trigger(
            "Escalate", "Hit, Hit, Hit", action=_noop,
            suppress=("ODE020",),
        ),
    ]


# -- raw machines the compilation pipeline could never emit ------------------

_MACHINE_ALPHABET = frozenset({"A", "B"})

#: state 2 exists but nothing reaches it.
_UNREACHABLE = Fsm(
    [
        FsmState(0, False, (), {"A": 1}),
        FsmState(1, True, (), {}),
        FsmState(2, False, (), {"A": 1}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: state 2 is reachable but has no path back to the accept state.
_TRAP = Fsm(
    [
        FsmState(0, False, (), {"A": 1, "B": 2}),
        FsmState(1, True, (), {}),
        FsmState(2, False, (), {"B": 2}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: no accept state at all: the empty language.
_NEVER = Fsm(
    [FsmState(0, False, (), {"A": 0})],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: a mask state whose True/False pseudo-transitions converge.
_VACUOUS = Fsm(
    [
        FsmState(0, False, ("m",), {"true:m": 1, "false:m": 1, "A": 0}),
        FsmState(1, True, (), {}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET | {"true:m", "false:m"},
    anchored=True,
)

__analysis_machines__ = {
    "unreachable-state": _UNREACHABLE,
    "trap-state": _TRAP,
    "never-accepts": _NEVER,
    "vacuous-mask": _VACUOUS,
}
