"""Deliberately-defective trigger declarations for the static analyzer.

Each class (or hand-built machine) here seeds exactly one kind of finding,
and the test suite asserts the analyzer reports it with the expected
stable code.  The module doubles as a CLI fixture:

    python -m repro.analysis tests/analysis_fixtures.py

must report every finding listed below (the CLI picks up the classes via
the process type registry and the raw machines via
``__analysis_machines__``).

Expected findings:

==============================  ================
fixture                         code
==============================  ================
BadVacuousMask.Gated            ODE010
BadUnusedMask.Checked           ODE011
BadSubsumedPair.Narrow          ODE020
BadIdenticalPair.First          ODE021
BadImmediateCascade (pair)      ODE030
BadDeferredCascade (pair)       ODE031
BadGhostPoster.Ghost            ODE032
BadDetachedAbort.Abort          ODE040
BadDeferredCommitWatch.Late     ODE041
BadHiddenCascade (pair)         ODE200 + ODE204
WarnGuardedCascade.Reheat       ODE201
BadRacingPair (pair)            ODE202
BadStalePoster.Stale            ODE203
BadSilentPoster.Silent          ODE204
BadStaleSuppress.Solo           ODE205
BadOpaqueAction.Opaque          ODE206
machine "unreachable-state"     ODE001
machine "trap-state"            ODE002
machine "never-accepts"         ODE003
machine "vacuous-mask"          ODE010
==============================  ================

The ``Clean*`` classes are control groups: superficially similar
declarations the analyzer must stay quiet about (incomparable pairs,
once-only-broken cycles, acknowledged suppressions, declared posters,
commuting same-point pairs).  Cascade-fixture actions genuinely post
their events, so the effect-inference passes agree with the ``posts=``
metadata instead of flagging it stale (ODE203).
"""

from __future__ import annotations

from repro.core.declarations import trigger
from repro.events.fsm import Fsm, FsmState
from repro.objects.persistent import Persistent
from repro.objects.schema import field


def _noop(self, ctx) -> None:
    pass


def _post_pong(self, ctx) -> None:
    self.post_event("PongEvent")


def _post_ping(self, ctx) -> None:
    self.post_event("PingEvent")


def _post_review(self, ctx) -> None:
    self.post_event("Review")


def _post_submit(self, ctx) -> None:
    self.post_event("Submit")


class BadVacuousMask(Persistent):
    """Trigger whose mask cannot change what the trigger does.

    ``Ping || (Ping & maybe)``: the plain ``Ping`` branch accepts on its
    own, so ``maybe``'s outcome is irrelevant — the compiler prunes the
    mask from the machine entirely, and the lint reports the predicate in
    the declaration as vacuous.
    """

    counter = field(int, default=0)
    __events__ = ["Ping"]
    __masks__ = {"maybe": lambda self: self.counter > 0}
    __triggers__ = [trigger("Gated", "Ping || (Ping & maybe)", action=_noop)]


class BadUnusedMask(Persistent):
    """Trigger-level mask predicate the expression never names."""

    counter = field(int, default=0)
    __events__ = ["Tick"]
    __triggers__ = [
        trigger(
            "Checked",
            "Tick",
            action=_noop,
            masks={"threshold": lambda self: self.counter > 10},
        )
    ]


class BadSubsumedPair(Persistent):
    """``Narrow`` (``Pay & big``) is language-included in ``Broad`` (``Pay``)."""

    amount = field(float, default=0.0)
    __events__ = ["Pay", "Refund"]
    __masks__ = {"big": lambda self: self.amount > 100.0}
    __triggers__ = [
        trigger("Narrow", "Pay & big", action=_noop, perpetual=True),
        trigger("Broad", "Pay", action=_noop, perpetual=True),
    ]


class BadIdenticalPair(Persistent):
    """Two triggers accepting exactly the same event sequences."""

    __events__ = ["Open", "Close"]
    __triggers__ = [
        trigger("First", "Open, Close", action=_noop),
        trigger("Second", "Open, Close", action=_noop),
    ]


class BadImmediateCascade(Persistent):
    """Perpetual immediate triggers that re-post each other's events."""

    __events__ = ["PingEvent", "PongEvent"]
    __triggers__ = [
        trigger(
            "Ping2Pong", "PingEvent", action=_post_pong, perpetual=True,
            posts=("PongEvent",),
        ),
        trigger(
            "Pong2Ping", "PongEvent", action=_post_ping, perpetual=True,
            posts=("PingEvent",),
        ),
    ]


class BadDeferredCascade(Persistent):
    """The same cycle, but one link is deferred: loops across transactions."""

    __events__ = ["Submit", "Review"]
    __triggers__ = [
        trigger(
            "Submit2Review", "Submit", action=_post_review, perpetual=True,
            coupling="end", posts=("Review",),
        ),
        trigger(
            "Review2Submit", "Review", action=_post_submit, perpetual=True,
            posts=("Submit",),
        ),
    ]


class BadGhostPoster(Persistent):
    """``posts`` names a user event nobody declares."""

    __events__ = ["Kick"]
    __triggers__ = [
        trigger("Ghost", "Kick", action=_noop, posts=("NoSuchEvent",))
    ]


def _detached_abort(self, ctx) -> None:
    ctx.tabort("too late to matter")


class BadDetachedAbort(Persistent):
    """``tabort`` from a ``!dependent`` action aborts the wrong transaction."""

    __events__ = ["Oops"]
    __triggers__ = [
        trigger(
            "Abort", "Oops", action=_detached_abort, coupling="!dependent",
            perpetual=True,
        )
    ]


class BadDeferredCommitWatch(Persistent):
    """Deferred trigger anchored on the commit event it races against."""

    __events__ = ["before tcomplete"]
    __triggers__ = [
        trigger(
            "Late", "before tcomplete", action=_noop, coupling="end",
            perpetual=True,
        )
    ]


# -- effect-inference fixtures (ODE200-ODE206) --------------------------------


def _post_loop_b(self, ctx) -> None:
    self.post_event("LoopB")


def _post_loop_a(self, ctx) -> None:
    self.post_event("LoopA")


class BadHiddenCascade(Persistent):
    """An undeclared ``post_event`` cycle: no ``posts=`` metadata at all.

    PR 1's declared-posts pass is blind here; only effect inference sees
    the edges (ODE200, plus ODE204 for each undeclared post).
    """

    __events__ = ["LoopA", "LoopB"]
    __triggers__ = [
        trigger("A2B", "LoopA", action=_post_loop_b, perpetual=True),
        trigger("B2A", "LoopB", action=_post_loop_a, perpetual=True),
    ]


def _post_step(self, ctx) -> None:
    self.post_event("StepDone")


class WarnGuardedCascade(Persistent):
    """A self-cycle that cannot fire without its mask holding.

    Every acceptance of ``StepDone & still_hot`` consumes
    ``true:still_hot``, so the cascade stops when the predicate goes
    false: a guarded cycle (ODE201), not an irrefutable one (ODE030).
    """

    heat = field(int, default=0)
    __events__ = ["StepDone"]
    __masks__ = {"still_hot": lambda self: self.heat > 0}
    __triggers__ = [
        trigger(
            "Reheat", "StepDone & still_hot", action=_post_step,
            perpetual=True, posts=("StepDone",),
        ),
    ]


def _bump_total(self, ctx) -> None:
    self.total = self.total + 5


def _clamp_total(self, ctx) -> None:
    self.total = min(self.total, 100)


class BadRacingPair(Persistent):
    """Two immediate triggers that can fire on the same posting and both
    write ``total``: the final state depends on firing order (ODE202)."""

    total = field(int, default=0)
    __events__ = ["RaceTick"]
    __masks__ = {
        "low_total": lambda self: self.total < 50,
        "high_total": lambda self: self.total > 90,
    }
    __triggers__ = [
        trigger(
            "BumpTotal", "RaceTick & low_total", action=_bump_total,
            perpetual=True,
        ),
        trigger(
            "ClampTotal", "RaceTick & high_total", action=_clamp_total,
            perpetual=True,
        ),
    ]


class BadStalePoster(Persistent):
    """``posts=`` claims an event the (confidently analyzed) body never
    posts: stale metadata feeding phantom cascade edges (ODE203)."""

    __events__ = ["Poke", "StaleDone"]
    __triggers__ = [
        trigger("Stale", "Poke", action=_noop, posts=("StaleDone",))
    ]


def _post_side(self, ctx) -> None:
    self.post_event("SideDone")


class BadSilentPoster(Persistent):
    """The body posts a user event ``posts=`` does not declare (ODE204);
    inference covers the edge, but the declaration should document it."""

    __events__ = ["Kickoff", "SideDone"]
    __triggers__ = [trigger("Silent", "Kickoff", action=_post_side)]


class BadStaleSuppress(Persistent):
    """``suppress=`` acknowledges a finding the analyzer never produces
    at this trigger (ODE205)."""

    __events__ = ["Lone"]
    __triggers__ = [
        trigger("Solo", "Lone", action=_noop, suppress=("ODE021",))
    ]


#: ``eval``'d actions have no retrievable source: effect inference must
#: degrade to an explicit unknown (ODE206), never crash.
_OPAQUE = eval("lambda handle, ctx: None")


class BadOpaqueAction(Persistent):
    """Action source unavailable: effects are unknown (ODE206)."""

    __events__ = ["Shrug"]
    __triggers__ = [trigger("Opaque", "Shrug", action=_OPAQUE)]


# -- control groups: similar shapes the analyzer must accept -----------------


def _post_work_done(self, ctx) -> None:
    self.post_event("WorkDone")


class CleanDeclaredPoster(Persistent):
    """A posting *chain* (no cycle) whose ``posts=`` matches the body:
    the negative control for ODE200/ODE203/ODE204."""

    __events__ = ["StartWork", "WorkDone"]
    __triggers__ = [
        trigger(
            "Worker", "StartWork", action=_post_work_done,
            posts=("WorkDone",), perpetual=True,
        ),
        trigger("Observer", "WorkDone", action=_noop, perpetual=True),
    ]


def _bump_left(self, ctx) -> None:
    self.left = self.left + 1


def _bump_right(self, ctx) -> None:
    self.right = self.right + 1


class CleanCommutingPair(Persistent):
    """Two triggers at the same coupling point whose actions touch
    disjoint attributes: confluent, the negative control for ODE202."""

    left = field(int, default=0)
    right = field(int, default=0)
    __events__ = ["SharedTick"]
    __masks__ = {
        "left_low": lambda self: self.left < 10,
        "right_low": lambda self: self.right < 10,
    }
    __triggers__ = [
        trigger(
            "BumpLeft", "SharedTick & left_low", action=_bump_left,
            perpetual=True,
        ),
        trigger(
            "BumpRight", "SharedTick & right_low", action=_bump_right,
            perpetual=True,
        ),
    ]



class CleanIncomparablePair(Persistent):
    """Two triggers on disjoint events: no inclusion either way."""

    __events__ = ["Deposit", "Withdraw"]
    __triggers__ = [
        trigger("OnDeposit", "Deposit", action=_noop, perpetual=True),
        trigger("OnWithdraw", "Withdraw", action=_noop, perpetual=True),
    ]


def _post_answer(self, ctx) -> None:
    self.post_event("Answer")


def _post_ask(self, ctx) -> None:
    self.post_event("Ask")


class CleanOnceOnlyCycle(Persistent):
    """A posting cycle broken by a once-only trigger: self-limiting."""

    __events__ = ["Ask", "Answer"]
    __triggers__ = [
        trigger("Ask2Answer", "Ask", action=_post_answer, posts=("Answer",)),
        trigger(
            "Answer2Ask", "Answer", action=_post_ask, perpetual=True,
            posts=("Ask",),
        ),
    ]


class CleanSuppressedPair(Persistent):
    """A deliberate escalation pair with the overlap acknowledged."""

    count = field(int, default=0)
    __events__ = ["Hit"]
    __triggers__ = [
        trigger("AlertOnce", "Hit, Hit", action=_noop, perpetual=True),
        trigger(
            "Escalate", "Hit, Hit, Hit", action=_noop,
            suppress=("ODE020",),
        ),
    ]


# -- raw machines the compilation pipeline could never emit ------------------

_MACHINE_ALPHABET = frozenset({"A", "B"})

#: state 2 exists but nothing reaches it.
_UNREACHABLE = Fsm(
    [
        FsmState(0, False, (), {"A": 1}),
        FsmState(1, True, (), {}),
        FsmState(2, False, (), {"A": 1}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: state 2 is reachable but has no path back to the accept state.
_TRAP = Fsm(
    [
        FsmState(0, False, (), {"A": 1, "B": 2}),
        FsmState(1, True, (), {}),
        FsmState(2, False, (), {"B": 2}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: no accept state at all: the empty language.
_NEVER = Fsm(
    [FsmState(0, False, (), {"A": 0})],
    start=0,
    alphabet=_MACHINE_ALPHABET,
    anchored=True,
)

#: a mask state whose True/False pseudo-transitions converge.
_VACUOUS = Fsm(
    [
        FsmState(0, False, ("m",), {"true:m": 1, "false:m": 1, "A": 0}),
        FsmState(1, True, (), {}),
    ],
    start=0,
    alphabet=_MACHINE_ALPHABET | {"true:m", "false:m"},
    anchored=True,
)

__analysis_machines__ = {
    "unreachable-state": _UNREACHABLE,
    "trap-state": _TRAP,
    "never-accepts": _NEVER,
    "vacuous-mask": _VACUOUS,
}
