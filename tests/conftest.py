"""Shared fixtures.

Databases register process-globally by name (persistent pointers embed the
name), so every test gets a uniquely-named database and the registry is
swept after each test even when the test fails mid-transaction.
"""

from __future__ import annotations

import itertools

import pytest

from repro.objects.database import Database

_COUNTER = itertools.count()


@pytest.fixture(autouse=True)
def _clean_open_databases():
    yield
    for db in list(Database._open_databases.values()):
        try:
            db.close()
        except Exception:
            db._closed = True
    Database._open_databases.clear()


@pytest.fixture
def db_path(tmp_path):
    """A unique on-disk path for a database."""
    return str(tmp_path / f"testdb-{next(_COUNTER)}")


@pytest.fixture(params=["disk", "mm"])
def any_engine_db(request, db_path):
    """A fresh database on each storage engine."""
    db = Database.open(db_path, engine=request.param)
    yield db
    if not db.closed:
        db.close()


@pytest.fixture
def disk_db(db_path):
    db = Database.open(db_path, engine="disk")
    yield db
    if not db.closed:
        db.close()


@pytest.fixture
def mm_db(db_path):
    db = Database.open(db_path, engine="mm")
    yield db
    if not db.closed:
        db.close()
