"""Static-analyzer tests: every diagnostic code, CLI, strict mode, ODE050.

The deliberately-defective declarations live in
:mod:`tests.analysis_fixtures`; each test here asserts the analyzer
reports exactly the expected stable code, and the ``Clean*`` control
classes stay quiet.  CLI behaviour (including the ``--self-check
examples/`` repo gate) runs in subprocesses so the bad fixture classes
never pollute the child's type registry.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import (
    CODES,
    Severity,
    analyze_class,
    analyze_classes,
    analyze_database,
    analyze_machine,
)
from repro.analysis.subsumption import check_subsumption
from repro.core.declarations import (
    set_strict_analysis,
    strict_analysis_enabled,
    trigger,
)
from repro.errors import TriggerDeclarationError
from repro.events.compile import compile_expression
from repro.events.dfa import find_inclusion_witness, language_included
from repro.objects.persistent import Persistent
from tests import analysis_fixtures as fx

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"


def _noop(self, ctx) -> None:
    pass


class TestDiagnosticCatalogue:
    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("ODE")
            assert isinstance(severity, Severity)
            assert title

    def test_unknown_code_rejected(self):
        from repro.analysis import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic("ODE999", "no such code")


class TestClassFixtures:
    """Each bad class seeds exactly its expected code."""

    @pytest.mark.parametrize(
        "cls_name, code",
        [
            ("BadVacuousMask", "ODE010"),
            ("BadUnusedMask", "ODE011"),
            ("BadSubsumedPair", "ODE020"),
            ("BadIdenticalPair", "ODE021"),
            ("BadImmediateCascade", "ODE030"),
            ("BadDeferredCascade", "ODE031"),
            ("BadGhostPoster", "ODE032"),
            ("BadDetachedAbort", "ODE040"),
            ("BadDeferredCommitWatch", "ODE041"),
            ("WarnGuardedCascade", "ODE201"),
            ("BadRacingPair", "ODE202"),
            ("BadStalePoster", "ODE203"),
            ("BadSilentPoster", "ODE204"),
            ("BadStaleSuppress", "ODE205"),
            ("BadOpaqueAction", "ODE206"),
        ],
    )
    def test_bad_class_reports_exact_code(self, cls_name, code):
        report = analyze_class(getattr(fx, cls_name))
        assert report.codes() == {code}

    def test_immediate_cascade_is_an_error(self):
        report = analyze_class(fx.BadImmediateCascade)
        (diag,) = report.by_code("ODE030")
        assert diag.severity == Severity.ERROR

    def test_hidden_cascade_needs_inference(self):
        """An undeclared post_event cycle with no posts= metadata at all:
        the ODE200 acceptance case, plus one ODE204 per silent post."""
        report = analyze_class(fx.BadHiddenCascade)
        assert report.codes() == {"ODE200", "ODE204"}
        (diag,) = report.by_code("ODE200")
        assert diag.severity == Severity.ERROR
        assert "A2B" in diag.message and "B2A" in diag.message
        assert len(report.by_code("ODE204")) == 2

    def test_guarded_cycle_is_a_warning_not_an_error(self):
        report = analyze_class(fx.WarnGuardedCascade)
        (diag,) = report.by_code("ODE201")
        assert diag.severity == Severity.WARNING
        assert "predicate-guarded" in diag.message

    def test_racing_pair_names_the_conflicting_attribute(self):
        report = analyze_class(fx.BadRacingPair)
        (diag,) = report.by_code("ODE202")
        assert "total" in diag.message
        assert diag.related == ("BadRacingPair.ClampTotal",)

    def test_subsumption_names_both_triggers(self):
        report = analyze_class(fx.BadSubsumedPair)
        (diag,) = report.by_code("ODE020")
        assert diag.location.trigger == "Narrow"
        assert "Broad" in diag.related

    @pytest.mark.parametrize(
        "cls_name",
        [
            "CleanIncomparablePair",
            "CleanOnceOnlyCycle",
            "CleanSuppressedPair",
            "CleanDeclaredPoster",
            "CleanCommutingPair",
        ],
    )
    def test_control_classes_are_clean(self, cls_name):
        report = analyze_class(getattr(fx, cls_name))
        assert report.diagnostics == []

    def test_suppression_hides_a_real_finding(self):
        """The suppressed pair genuinely overlaps; suppress= is doing work."""
        infos = fx.CleanSuppressedPair.__metatype__.trigger_infos
        raw = check_subsumption(list(infos), "CleanSuppressedPair")
        assert {d.code for d in raw} == {"ODE020"}
        assert raw[0].location.trigger == "Escalate"


class TestMachineFixtures:
    """Hand-built machines the compiler could never emit."""

    @pytest.mark.parametrize(
        "machine_name, code",
        [
            ("unreachable-state", "ODE001"),
            ("trap-state", "ODE002"),
            ("never-accepts", "ODE003"),
            ("vacuous-mask", "ODE010"),
        ],
    )
    def test_machine_reports_exact_code(self, machine_name, code):
        fsm = fx.__analysis_machines__[machine_name]
        found = analyze_machine(fsm)
        assert {d.code for d in found} == {code}

    def test_compiled_machines_pass_machine_passes(self):
        """The pipeline (minimize + prune) leaves nothing for these passes."""
        for text in ["A, B", "^(A, B)", "(A & m) || B", "*(A), B, +(C)"]:
            fsm = compile_expression(text, ["A", "B", "C"]).fsm
            assert analyze_machine(fsm) == []


class TestLanguageInclusion:
    """The product construction, exercised in both directions."""

    DECLS = ["Deposit", "Audit"]

    def _fsm(self, text):
        return compile_expression(text, self.DECLS, known_masks=["big"]).fsm

    def test_narrow_included_in_broad(self):
        narrow = self._fsm("Deposit & big")
        broad = self._fsm("Deposit")
        assert language_included(narrow, broad)
        assert find_inclusion_witness(narrow, broad) is None

    def test_broad_not_included_in_narrow(self):
        narrow = self._fsm("Deposit & big")
        broad = self._fsm("Deposit")
        witness = find_inclusion_witness(broad, narrow)
        assert witness is not None
        assert not language_included(broad, narrow)

    def test_incomparable_pair_has_witnesses_both_ways(self):
        a = self._fsm("Deposit")
        b = self._fsm("Audit")
        assert find_inclusion_witness(a, b) is not None
        assert find_inclusion_witness(b, a) is not None

    def test_identical_languages_included_both_ways(self):
        a = self._fsm("Deposit, Audit")
        b = self._fsm("Deposit, Audit")
        assert language_included(a, b)
        assert language_included(b, a)


class TestStrictMode:
    def test_strict_flag_round_trips(self):
        prev = set_strict_analysis(True)
        try:
            assert strict_analysis_enabled()
        finally:
            set_strict_analysis(prev)
        assert strict_analysis_enabled() == prev

    def test_strict_mode_rejects_bad_declaration(self):
        prev = set_strict_analysis(True)
        try:
            with pytest.raises(TriggerDeclarationError) as err:

                class StrictlyBadSpareMask(Persistent):
                    __events__ = ["Tock"]
                    __triggers__ = [
                        trigger(
                            "Checked",
                            "Tock",
                            action=_noop,
                            masks={"spare": lambda self: True},
                        )
                    ]

            assert "ODE011" in str(err.value)
        finally:
            set_strict_analysis(prev)

    def test_strict_mode_accepts_clean_declaration(self):
        prev = set_strict_analysis(True)
        try:

            class StrictlyFineGadget(Persistent):
                __events__ = ["Tack"]
                __triggers__ = [trigger("Plain", "Tack", action=_noop)]

        finally:
            set_strict_analysis(prev)

    def test_class_level_strict_attribute(self):
        assert not strict_analysis_enabled()
        with pytest.raises(TriggerDeclarationError) as err:

            class LocallyStrictVacuous(Persistent):
                __strict_triggers__ = True
                __events__ = ["Knock"]
                __masks__ = {"odd": lambda self: True}
                __triggers__ = [
                    trigger(
                        "Gated", "Knock || (Knock & odd)", action=_noop
                    )
                ]

        assert "ODE010" in str(err.value)


class _ExampleLoader:
    _modules: dict[str, object] = {}

    @classmethod
    def load(cls, path: pathlib.Path):
        name = f"ode_test_example_{path.stem}"
        if name not in cls._modules:
            spec = importlib.util.spec_from_file_location(name, path)
            module = importlib.util.module_from_spec(spec)
            sys.modules[name] = module
            spec.loader.exec_module(module)
            cls._modules[name] = module
        return cls._modules[name]


class TestExamplesAreClean:
    def test_every_example_class_is_clean(self):
        """The examples directory is lint-clean (in-process twin of the CLI
        ``--self-check`` gate; uses explicit targets because the bad fixture
        classes share this process's type registry)."""
        targets = []
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            module = _ExampleLoader.load(path)
            for obj in vars(module).values():
                if (
                    isinstance(obj, type)
                    and issubclass(obj, Persistent)
                    and obj is not Persistent
                    and obj.__module__ == module.__name__
                ):
                    targets.append(obj)
        assert targets, "no persistent classes found under examples/"
        report = analyze_classes(targets)
        assert report.diagnostics == [], report.render_text()

    def test_builtin_workloads_are_clean(self):
        from repro.workloads.credit_card import CredCard
        from repro.workloads.trading import Portfolio, Stock

        report = analyze_classes([CredCard, Stock, Portfolio])
        assert report.diagnostics == [], report.render_text()


class DeadEndGadget(Persistent):
    """Anchored two-step window: one wrong event and the machine is dead."""

    __events__ = ["EvA", "EvB"]
    __triggers__ = [trigger("Window", "^(EvA, EvB)", action=_noop)]


class TestDatabaseAnalysis:
    def test_healthy_active_trigger_is_clean(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(DeadEndGadget)
            gadget.Window()
        assert analyze_database(db).diagnostics == []

    def test_dead_anchored_trigger_reports_ode050(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(DeadEndGadget)
            gadget.Window()
            gadget.post_event("EvB")  # misses the window for good
        report = analyze_database(db)
        assert report.codes() == {"ODE050"}
        (diag,) = report.diagnostics
        assert diag.location.trigger == "Window"


def _run_cli(*argv: str, cwd: str | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd or str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


EXPECTED_FIXTURE_CODES = {
    "ODE001",
    "ODE002",
    "ODE003",
    "ODE010",
    "ODE011",
    "ODE020",
    "ODE021",
    "ODE030",
    "ODE031",
    "ODE032",
    "ODE040",
    "ODE041",
    "ODE200",
    "ODE201",
    "ODE202",
    "ODE203",
    "ODE204",
    "ODE205",
    "ODE206",
}


class TestCommandLine:
    def test_fixtures_file_reports_every_seeded_code(self):
        proc = _run_cli("tests/analysis_fixtures.py")
        assert proc.returncode == 1, proc.stderr
        for code in EXPECTED_FIXTURE_CODES:
            assert code in proc.stdout

    def test_json_output_is_parseable(self):
        proc = _run_cli("tests/analysis_fixtures.py", "--json")
        assert proc.returncode == 1, proc.stderr
        findings = json.loads(proc.stdout)
        assert {f["code"] for f in findings} == EXPECTED_FIXTURE_CODES
        assert all("severity" in f and "message" in f for f in findings)

    def test_fail_on_never_reports_but_exits_zero(self):
        proc = _run_cli("tests/analysis_fixtures.py", "--fail-on", "never")
        assert proc.returncode == 0, proc.stderr
        assert "ODE030" in proc.stdout

    def test_self_check_examples_passes(self):
        """The repo gate: examples/ must be lint-clean."""
        proc = _run_cli("--self-check", "examples")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_self_check_fails_on_bad_directory(self, tmp_path):
        bad = tmp_path / "bad_module.py"
        bad.write_text(
            "from repro.core.declarations import trigger\n"
            "from repro.objects.persistent import Persistent\n"
            "class Leak(Persistent):\n"
            "    __events__ = ['Go']\n"
            "    __triggers__ = [trigger('T', 'Go', action=lambda s, c: None,\n"
            "                            posts=('Missing',))]\n"
        )
        proc = _run_cli("--self-check", str(tmp_path))
        assert proc.returncode == 1
        assert "ODE032" in proc.stdout

    def test_module_target_is_clean(self):
        proc = _run_cli("repro.workloads.credit_card", "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == []

    def test_list_codes_prints_catalogue(self):
        proc = _run_cli("--list-codes")
        assert proc.returncode == 0
        for code in ("ODE001", "ODE020", "ODE050"):
            assert code in proc.stdout

    def test_unknown_target_exits_two(self):
        proc = _run_cli("no/such/target")
        assert proc.returncode == 2

    def test_database_target_with_and_without_schema(self, tmp_path):
        """A db path is a *prefix*; without the defining module the states
        are skipped with an ODE051 note, with it the dead state is ODE050."""
        schema = tmp_path / "sensor_schema.py"
        schema.write_text(
            "from repro import Persistent, trigger\n"
            "class CliSensor(Persistent):\n"
            "    __events__ = ['EvA', 'EvB']\n"
            "    __triggers__ = [trigger('Window', '^(EvA, EvB)',\n"
            "                            action=lambda s, c: None)]\n"
        )
        build = tmp_path / "build_db.py"
        build.write_text(
            "import sys\n"
            f"sys.path.insert(0, {str(tmp_path)!r})\n"
            "from repro import Database\n"
            "from sensor_schema import CliSensor\n"
            f"db = Database.open({str(tmp_path / 'sensors')!r}, engine='disk')\n"
            "with db.transaction():\n"
            "    s = db.pnew(CliSensor)\n"
            "    s.Window()\n"
            "    s.post_event('EvB')\n"  # anchored window missed: dead
            "db.close()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        subprocess.run(
            [sys.executable, str(build)],
            env=env,
            check=True,
            capture_output=True,
            timeout=120,
        )
        db_prefix = str(tmp_path / "sensors")

        alone = _run_cli(db_prefix)
        assert alone.returncode == 0, alone.stdout + alone.stderr
        assert "ODE051" in alone.stdout  # info: type not loaded, exit clean

        # ODE050 is a warning; the default gate is `error`, so ask for
        # the stricter threshold explicitly.
        with_schema = _run_cli(str(schema), db_prefix, "--fail-on", "warning")
        assert with_schema.returncode == 1
        assert "ODE050" in with_schema.stdout

    def test_warnings_only_run_exits_zero(self, tmp_path):
        """The exit-code contract: findings below `error` never fail the
        default run, in text or JSON mode."""
        mod = tmp_path / "stale_posts.py"
        mod.write_text(
            "from repro.core.declarations import trigger\n"
            "from repro.objects.persistent import Persistent\n"
            "def _quiet(self, ctx):\n"
            "    pass\n"
            "class StaleOnly(Persistent):\n"
            "    __events__ = ['Go', 'Done']\n"
            "    __triggers__ = [trigger('T', 'Go', action=_quiet,\n"
            "                            posts=('Done',))]\n"
        )
        text = _run_cli(str(mod))
        assert text.returncode == 0, text.stdout + text.stderr
        assert "ODE203" in text.stdout
        as_json = _run_cli(str(mod), "--json")
        assert as_json.returncode == 0, as_json.stdout + as_json.stderr
        assert {f["code"] for f in json.loads(as_json.stdout)} == {"ODE203"}

    def test_strict_promotes_ode2xx_warnings_to_errors(self, tmp_path):
        mod = tmp_path / "stale_posts.py"
        mod.write_text(
            "from repro.core.declarations import trigger\n"
            "from repro.objects.persistent import Persistent\n"
            "def _quiet(self, ctx):\n"
            "    pass\n"
            "class StaleOnly(Persistent):\n"
            "    __events__ = ['Go', 'Done']\n"
            "    __triggers__ = [trigger('T', 'Go', action=_quiet,\n"
            "                            posts=('Done',))]\n"
        )
        proc = _run_cli(str(mod), "--strict", "--json")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        (finding,) = [
            f for f in json.loads(proc.stdout) if f["code"] == "ODE203"
        ]
        assert finding["severity"] == "error"

    def test_strict_leaves_ode0xx_severities_alone(self):
        proc = _run_cli("tests/analysis_fixtures.py", "--strict", "--json")
        assert proc.returncode == 1
        by_code = {}
        for f in json.loads(proc.stdout):
            by_code.setdefault(f["code"], set()).add(f["severity"])
        assert by_code["ODE020"] == {"warning"}   # 0xx untouched
        assert by_code["ODE201"] == {"error"}     # 2xx promoted
        assert by_code["ODE206"] == {"info"}      # info stays info

    def test_tools_lint_subcommand_dispatches(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools", "lint", "--list-codes"],
            cwd=str(REPO_ROOT),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "ODE020" in proc.stdout
