"""Baseline-detector tests and three-way equivalence properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DenseFsm,
    EventGraphDetector,
    IntEventTable,
    RescanDetector,
    SentinelEventTable,
)
from repro.core.registry import EventRegistry
from repro.core.trigger_def import IntFsm
from repro.errors import EventError
from repro.events.compile import compile_expression
from repro.events.parser import parse

DECLS = ["A", "B", "C"]


class TestSentinelTables:
    def test_int_table_delivers(self):
        table = IntEventTable()
        hits = []
        table.subscribe(7, lambda: hits.append(1))
        table.subscribe(7, lambda: hits.append(2))
        assert table.post(7) == 2
        assert hits == [1, 2]
        assert table.post(8) == 0

    def test_sentinel_table_delivers(self):
        table = SentinelEventTable()
        hits = []
        table.subscribe("CredCard", "void PayBill(float)", "end", lambda: hits.append(1))
        assert table.post("CredCard", "void PayBill(float)", "end") == 1
        assert table.post("CredCard", "void PayBill(float)", "begin") == 0
        assert hits == [1]

    def test_tables_count_posts(self):
        int_table, sent_table = IntEventTable(), SentinelEventTable()
        int_table.post(1)
        sent_table.post("C", "p", "end")
        assert int_table.posts == sent_table.posts == 1


class TestRescan:
    def test_simple_sequence(self):
        expr, _ = parse("A, B")
        detector = RescanDetector(expr)
        assert [detector.post(s) for s in ["A", "B", "B"]] == [False, True, False]

    def test_anchored(self):
        expr, _ = parse("A, B")
        detector = RescanDetector(expr, anchored=True)
        assert [detector.post(s) for s in ["C", "A", "B"]] == [False, False, False]

    def test_masks_recorded_at_post_time(self):
        expr, _ = parse("A & hot")
        detector = RescanDetector(expr)
        assert detector.post("A", {"hot": False}) is False
        assert detector.post("A", {"hot": True}) is True

    def test_scan_cost_grows_with_history(self):
        expr, _ = parse("A, B")
        detector = RescanDetector(expr)
        for _ in range(50):
            detector.post("C")
        early = detector.positions_visited
        for _ in range(50):
            detector.post("C")
        late = detector.positions_visited - early
        assert late > early  # superlinear accumulation

    def test_reset(self):
        expr, _ = parse("A")
        detector = RescanDetector(expr)
        detector.post("A")
        detector.reset()
        assert detector.history == []


class TestEventGraph:
    def test_simple_sequence(self):
        expr, _ = parse("A, B")
        graph = EventGraphDetector(expr)
        assert [graph.post(s) for s in ["A", "B", "B"]] == [False, True, False]

    def test_rejects_masks(self):
        expr, _ = parse("A & m")
        with pytest.raises(EventError):
            EventGraphDetector(expr)

    def test_partial_state_accumulates(self):
        expr, _ = parse("A, B")
        graph = EventGraphDetector(expr)
        for _ in range(20):
            graph.post("A")  # left completions pile up
        assert graph.partial_state_size() >= 20

    def test_reset_clears_state(self):
        expr, _ = parse("A, B")
        graph = EventGraphDetector(expr)
        graph.post("A")
        graph.reset()
        assert graph.partial_state_size() == 0
        assert graph.post("B") is False


class TestDenseFsm:
    def _int_fsm(self, text):
        cm = compile_expression(text, DECLS)
        registry = EventRegistry()
        symbol_to_int = {s: registry.assign("T", s) for s in cm.event_symbols}
        pseudo = {}
        for mask in cm.masks:
            pseudo[(mask, True)] = registry.assign("T", "true:" + mask)
            pseudo[(mask, False)] = registry.assign("T", "false:" + mask)
        return IntFsm(cm, symbol_to_int, pseudo), registry

    def test_dense_matches_sparse_moves(self):
        fsm, registry = self._int_fsm("A, B")
        dense = DenseFsm(fsm, len(registry))
        for state in range(len(fsm)):
            for eventnum in range(1, len(registry) + 1):
                assert dense.move(state, eventnum) == fsm.move(state, eventnum)

    def test_dense_cells_scale_with_global_events(self):
        fsm, registry = self._int_fsm("A, B")
        small = DenseFsm(fsm, len(registry))
        huge = DenseFsm(fsm, 4096)
        assert huge.cells() > small.cells() * 100
        assert huge.used_cells() == small.used_cells()
        assert huge.occupancy() < small.occupancy()

    def test_dense_approx_bytes(self):
        fsm, registry = self._int_fsm("A")
        dense = DenseFsm(fsm, len(registry))
        assert dense.approx_bytes() == dense.cells() * 8


_EXPRS = st.sampled_from(
    [
        "A",
        "A, B",
        "A || B",
        "A, B, C",
        "(A || B), C",
        "A, *B, C",
        "+A, B",
        "(A, B) || (B, C)",
        "A, *(B || C), A",
    ]
)
_STREAMS = st.lists(st.sampled_from(DECLS), max_size=50)


@settings(max_examples=120, deadline=None)
@given(text=_EXPRS, stream=_STREAMS)
def test_three_detectors_agree(text, stream):
    """FSM, rescan, and event-graph detect identical occurrences."""
    cm = compile_expression(text, DECLS)
    expr, _ = parse(text)
    rescan = RescanDetector(expr)
    graph = EventGraphDetector(expr)
    state = cm.fsm.start
    for symbol in stream:
        result = cm.fsm.advance(state, symbol, lambda m: False)
        state = result.state
        assert result.accepted == rescan.post(symbol) == graph.post(symbol)
