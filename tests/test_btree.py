"""B+-tree unit and property tests (the disk-Ode index substrate)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree
from repro.storage.mainmem import MainMemoryStorageManager


@pytest.fixture
def store():
    sm = MainMemoryStorageManager(None, durable=False)
    sm.begin_transaction(1)
    yield sm
    try:
        sm.commit_transaction(1)
    except Exception:
        pass
    sm.close()


@pytest.fixture
def tree(store):
    return BTree.create(store, 1, order=4)  # tiny order: force splits


def k(i: int) -> bytes:
    return f"{i:08d}".encode()


class TestBasics:
    def test_empty_tree(self, store, tree):
        assert tree.get(1, k(5)) == []
        assert list(tree.items(1)) == []
        assert tree.depth(1) == 1

    def test_insert_and_get(self, store, tree):
        tree.insert(1, k(5), 500)
        assert tree.get(1, k(5)) == [500]
        assert tree.contains(1, k(5))
        assert not tree.contains(1, k(6))

    def test_duplicate_values_per_key(self, store, tree):
        tree.insert(1, k(5), 500)
        tree.insert(1, k(5), 501)
        tree.insert(1, k(5), 500)  # idempotent
        assert sorted(tree.get(1, k(5))) == [500, 501]

    def test_many_inserts_force_splits(self, store, tree):
        for i in range(200):
            tree.insert(1, k(i), i)
        assert tree.depth(1) >= 3
        for i in range(200):
            assert tree.get(1, k(i)) == [i]
        assert tree.check_invariants(1) == []

    def test_reverse_and_shuffled_insert_orders(self, store):
        import random

        for seed in (1, 2):
            tree = BTree.create(store, 1, order=4)
            keys = list(range(150))
            random.Random(seed).shuffle(keys)
            for i in keys:
                tree.insert(1, k(i), i)
            assert [key for key, _ in tree.items(1)] == [k(i) for i in range(150)]
            assert tree.check_invariants(1) == []


class TestRange:
    def test_range_inclusive(self, store, tree):
        for i in range(50):
            tree.insert(1, k(i), i)
        values = [v for _, v in tree.range(1, k(10), k(20))]
        assert values == list(range(10, 21))

    def test_open_ended_ranges(self, store, tree):
        for i in range(20):
            tree.insert(1, k(i), i)
        assert [v for _, v in tree.range(1, None, k(4))] == [0, 1, 2, 3, 4]
        assert [v for _, v in tree.range(1, k(16), None)] == [16, 17, 18, 19]

    def test_full_scan_ordered(self, store, tree):
        for i in (5, 1, 9, 3, 7):
            tree.insert(1, k(i), i)
        assert [v for _, v in tree.items(1)] == [1, 3, 5, 7, 9]


class TestDelete:
    def test_delete_key(self, store, tree):
        tree.insert(1, k(1), 10)
        assert tree.delete(1, k(1))
        assert tree.get(1, k(1)) == []
        assert not tree.delete(1, k(1))

    def test_delete_single_value(self, store, tree):
        tree.insert(1, k(1), 10)
        tree.insert(1, k(1), 11)
        assert tree.delete(1, k(1), 10)
        assert tree.get(1, k(1)) == [11]
        assert not tree.delete(1, k(1), 999)

    def test_delete_after_splits(self, store, tree):
        for i in range(100):
            tree.insert(1, k(i), i)
        for i in range(0, 100, 2):
            assert tree.delete(1, k(i))
        assert [v for _, v in tree.items(1)] == list(range(1, 100, 2))
        assert tree.check_invariants(1) == []


class TestTransactional:
    def test_abort_rolls_back_inserts(self):
        sm = MainMemoryStorageManager(None, durable=False)
        sm.begin_transaction(1)
        tree = BTree.create(sm, 1, order=4)
        header = tree.header_rid
        sm.commit_transaction(1)

        sm.begin_transaction(2)
        tree2 = BTree(sm, header, order=4)
        for i in range(50):
            tree2.insert(2, k(i), i)
        sm.abort_transaction(2)

        sm.begin_transaction(3)
        assert list(BTree(sm, header, order=4).items(3)) == []
        sm.commit_transaction(3)
        sm.close()

    def test_survives_reopen_on_disk(self, tmp_path):
        from repro.storage.disk import DiskStorageManager

        path = str(tmp_path / "bt")
        sm = DiskStorageManager(path)
        sm.begin_transaction(1)
        tree = BTree.create(sm, 1)
        header = tree.header_rid
        for i in range(300):
            tree.insert(1, k(i), i)
        sm.commit_transaction(1)
        sm.close()

        sm2 = DiskStorageManager(path)
        sm2.begin_transaction(1)
        tree2 = BTree(sm2, header)
        assert tree2.count(1) == 300
        assert tree2.get(1, k(123)) == [123]
        assert tree2.check_invariants(1) == []
        sm2.commit_transaction(1)
        sm2.close()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 60),
            st.integers(0, 3),
        ),
        max_size=120,
    )
)
def test_btree_matches_model(ops):
    """Random insert/delete sequences behave like a dict of sets."""
    sm = MainMemoryStorageManager(None, durable=False)
    sm.begin_transaction(1)
    tree = BTree.create(sm, 1, order=4)
    model: dict[bytes, set[int]] = {}
    try:
        for op, key_i, value in ops:
            key = k(key_i)
            if op == "insert":
                tree.insert(1, key, value)
                model.setdefault(key, set()).add(value)
            else:
                tree.delete(1, key, value)
                if key in model:
                    model[key].discard(value)
                    if not model[key]:
                        del model[key]
        for key, values in model.items():
            assert sorted(tree.get(1, key)) == sorted(values)
        flattened = sorted(
            (key, value) for key, values in model.items() for value in values
        )
        assert sorted(tree.items(1)) == flattened
        assert tree.check_invariants(1) == []
    finally:
        sm.abort_transaction(1)
        sm.close()
