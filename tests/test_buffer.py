"""Paged-file and buffer-pool tests."""

import pytest

from repro.errors import BufferPoolError, PageError
from repro.storage.buffer import BufferPool, PagedFile, checksum_ok
from repro.storage.interface import StorageStats
from repro.storage.page import PAGE_SIZE, USABLE_END, SlottedPage


@pytest.fixture
def paged_file(tmp_path):
    file = PagedFile(str(tmp_path / "data.pages"))
    yield file
    file.close()


def test_allocate_and_roundtrip(paged_file):
    page_no = paged_file.allocate_page()
    assert page_no == 0
    raw = bytearray(PAGE_SIZE)
    raw[:5] = b"hello"
    paged_file.write_page(page_no, raw)
    assert paged_file.read_page(page_no)[:5] == b"hello"


def test_read_out_of_range_raises(paged_file):
    with pytest.raises(PageError):
        paged_file.read_page(0)


def test_write_wrong_size_raises(paged_file):
    paged_file.allocate_page()
    with pytest.raises(PageError):
        paged_file.write_page(0, b"short")


def test_allocated_page_is_zeroed(paged_file):
    page_no = paged_file.allocate_page()
    raw = paged_file.read_page(page_no)
    # body is zeroed; the trailing 4 bytes hold the stamped CRC
    assert raw[:USABLE_END] == bytearray(USABLE_END)
    assert checksum_ok(raw)


def test_reopen_preserves_pages(tmp_path):
    path = str(tmp_path / "x.pages")
    file = PagedFile(path)
    file.allocate_page()
    raw = bytearray(PAGE_SIZE)
    raw[:3] = b"abc"
    file.write_page(0, raw)
    file.close()
    file2 = PagedFile(path)
    assert file2.num_pages == 1
    assert file2.read_page(0)[:3] == b"abc"
    file2.close()


class TestBufferPool:
    def _pool(self, paged_file, capacity=3, stats=None):
        return BufferPool(paged_file, capacity=capacity, stats=stats)

    def test_fetch_pins_page(self, paged_file):
        pool = self._pool(paged_file)
        page_no = paged_file.allocate_page()
        page = pool.fetch(page_no)
        assert isinstance(page, SlottedPage)
        pool.unpin(page_no, dirty=False)

    def test_unpin_unfetched_raises(self, paged_file):
        pool = self._pool(paged_file)
        paged_file.allocate_page()
        with pytest.raises(BufferPoolError):
            pool.unpin(0, dirty=False)

    def test_fetch_same_page_twice_shares_frame(self, paged_file):
        pool = self._pool(paged_file)
        page_no = paged_file.allocate_page()
        a = pool.fetch(page_no)
        b = pool.fetch(page_no)
        assert a is b
        pool.unpin(page_no, dirty=False)
        pool.unpin(page_no, dirty=False)

    def test_dirty_page_written_back_on_eviction(self, paged_file):
        pool = self._pool(paged_file, capacity=1)
        p0 = paged_file.allocate_page()
        p1 = paged_file.allocate_page()
        page = pool.fetch(p0)
        page.insert(b"dirty-data")
        pool.unpin(p0, dirty=True)
        pool.fetch(p1)  # evicts p0
        pool.unpin(p1, dirty=False)
        fresh = SlottedPage(paged_file.read_page(p0))
        assert list(fresh.records()) == [(0, b"dirty-data")]

    def test_all_pinned_exhausts_pool(self, paged_file):
        pool = self._pool(paged_file, capacity=1)
        p0 = paged_file.allocate_page()
        p1 = paged_file.allocate_page()
        pool.fetch(p0)
        with pytest.raises(BufferPoolError):
            pool.fetch(p1)

    def test_flush_all_writes_dirty_frames(self, paged_file):
        pool = self._pool(paged_file)
        p0 = paged_file.allocate_page()
        page = pool.fetch(p0)
        page.insert(b"flushed")
        pool.unpin(p0, dirty=True)
        pool.flush_all()
        fresh = SlottedPage(paged_file.read_page(p0))
        assert list(fresh.records()) == [(0, b"flushed")]

    def test_drop_all_discards_unwritten_changes(self, paged_file):
        pool = self._pool(paged_file)
        p0 = paged_file.allocate_page()
        page = pool.fetch(p0)
        page.insert(b"lost")
        pool.unpin(p0, dirty=True)
        pool.drop_all()
        fresh = SlottedPage(paged_file.read_page(p0))
        assert list(fresh.records()) == []

    def test_drop_all_with_pins_raises(self, paged_file):
        pool = self._pool(paged_file)
        p0 = paged_file.allocate_page()
        pool.fetch(p0)
        with pytest.raises(BufferPoolError):
            pool.drop_all()

    def test_hit_miss_eviction_stats(self, paged_file):
        stats = StorageStats()
        pool = self._pool(paged_file, capacity=2, stats=stats)
        pages = [paged_file.allocate_page() for _ in range(3)]
        pool.fetch(pages[0])
        pool.unpin(pages[0], dirty=False)
        pool.fetch(pages[0])
        pool.unpin(pages[0], dirty=False)
        assert stats.page_hits == 1
        assert stats.page_misses == 1
        pool.fetch(pages[1])
        pool.unpin(pages[1], dirty=False)
        pool.fetch(pages[2])  # evicts LRU
        pool.unpin(pages[2], dirty=False)
        assert stats.page_evictions == 1

    def test_lru_evicts_least_recently_used(self, paged_file):
        pool = self._pool(paged_file, capacity=2)
        pages = [paged_file.allocate_page() for _ in range(3)]
        pool.fetch(pages[0])
        pool.unpin(pages[0], dirty=False)
        pool.fetch(pages[1])
        pool.unpin(pages[1], dirty=False)
        pool.fetch(pages[0])  # touch 0: now 1 is LRU
        pool.unpin(pages[0], dirty=False)
        pool.fetch(pages[2])
        pool.unpin(pages[2], dirty=False)
        assert pages[1] not in pool.cached_pages()
        assert pages[0] in pool.cached_pages()

    def test_pre_write_hook_called_before_writeback(self, paged_file):
        calls = []
        pool = BufferPool(paged_file, capacity=1, pre_write=lambda: calls.append(1))
        p0 = paged_file.allocate_page()
        p1 = paged_file.allocate_page()
        page = pool.fetch(p0)
        page.insert(b"data")
        pool.unpin(p0, dirty=True)
        pool.fetch(p1)  # eviction writes p0 -> hook fires
        assert calls == [1]

    def test_capacity_must_be_positive(self, paged_file):
        with pytest.raises(BufferPoolError):
            BufferPool(paged_file, capacity=0)
