"""The generated-code posting fast path and its ODE4xx gate (DESIGN.md §14).

Three families:

* **Differential**: hypothesis-generated event scripts replayed through
  the compiled tier and the interpreter on identical fixtures must
  produce identical firing orders, final FSM states, and posting stats
  (satellite: compiled ≡ interpreted is the tier's entire contract).
* **Invalidation**: any trigger add/remove/strict-mode flip bumps the
  schema version and evicts compiled artifacts; a redefined class must
  never fire a stale closure — including mid-transaction.
* **Judgments**: each ODE400–ODE404 refusal has a fixture, falls back
  cleanly, and `CompiledTier.explain` names the reason.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis.compilable import classify_trigger
from repro.core.compiled import (
    global_compiled_tier,
    last_bump_reason,
    schema_version,
)
from repro.core.declarations import set_strict_analysis, trigger
from repro.core.monitored import LocalTriggerSystem, Monitored
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

# Firing log shared by the fixture actions; cleared per replay.
_FIRED: list[str] = []
# Side channel observed by the deliberately impure mask.
_PROBES: list[int] = []


class TierGadget(Persistent):
    """Differential fixture: sequences, pure masks, params, once-only,
    deferred coupling, and one deliberately non-compilable trigger."""

    n = field(int, default=0)

    __events__ = ["Tick", "Tock", "Bump"]
    __masks__ = {
        "hot": lambda self: self.n > 3,
        "low": lambda self, params: self.n < params["floor"],
    }
    __triggers__ = [
        trigger(
            "Pair",
            "Tick, Tock",
            action=lambda self, ctx: _FIRED.append("Pair"),
            perpetual=True,
        ),
        trigger(
            "Hot",
            "Tick & hot",
            action=lambda self, ctx: _FIRED.append("Hot"),
            perpetual=True,
        ),
        trigger(
            "Low",
            "Bump & low",
            action=lambda self, ctx: _FIRED.append("Low"),
            params=("floor",),
        ),
        trigger(
            "Deferred",
            "Tock",
            action=lambda self, ctx: _FIRED.append("Deferred"),
            coupling="end",
            perpetual=True,
        ),
        trigger(
            "Impure",
            "Tick & noisy",
            action=lambda self, ctx: _FIRED.append("Impure"),
            masks={"noisy": lambda self: (_PROBES.append(1), True)[1]},
            perpetual=True,
        ),
    ]


_BATCH = st.lists(
    st.sampled_from(["tick", "tock", "bump", "inc"]), min_size=1, max_size=6
)
_SCRIPT = st.lists(_BATCH, min_size=1, max_size=8)

COMPILABLE_TRIGGERS = ("Pair", "Hot", "Low", "Deferred")


def _replay(base_path, script, compiled_enabled, trigger_cc="2pl"):
    """Run *script* on a fresh database; return (firings, states, stats)."""
    db = Database.open(base_path, engine="mm", trigger_cc=trigger_cc)
    try:
        db.trigger_system.compiled_enabled = compiled_enabled
        with db.transaction():
            h = db.pnew(TierGadget)
            ptr = h.ptr
            h.Pair()
            h.Hot()
            h.Low(5)
            h.Deferred()
            h.Impure()
        _FIRED.clear()
        stats = db.trigger_system.stats
        stats.reset()
        for batch in script:
            with db.transaction():
                h = db.deref(ptr)
                for op in batch:
                    if op == "inc":
                        h.n += 1
                    else:
                        h.post_event(op.capitalize())
        fired = list(_FIRED)
        with db.transaction():
            states = sorted(
                (ts.triggernum, ts.statenum)
                for _, ts, _info in db.trigger_system.active_triggers(ptr)
            )
        snapshot = stats.snapshot()
        tier_counters = {
            k: snapshot.pop(k) for k in ("compiled_hits", "compiled_fallbacks")
        }
        return fired, states, snapshot, tier_counters
    finally:
        db.close()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_compiled_equals_interpreted(tmp_path_factory, script):
    root = tmp_path_factory.mktemp("difftier")
    interp = _replay(str(root / "interp"), script, compiled_enabled=False)
    compiled = _replay(str(root / "compiled"), script, compiled_enabled=True)
    assert compiled[0] == interp[0]  # firing order, incl. deferred drain
    assert compiled[1] == interp[1]  # surviving states + statenums
    assert compiled[2] == interp[2]  # posting.* counters
    assert interp[3] == {"compiled_hits": 0, "compiled_fallbacks": 0}


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_compiled_equals_interpreted_under_mvcc(tmp_path_factory, script):
    """The tier's contract holds unchanged when advances buffer through
    the version chain (DESIGN.md §15) instead of writing in place: the
    BufferEntry caches the generated closure exactly like the 2PL
    per-transaction cache, so firings, surviving states, and posting
    counters must match the MVCC interpreter — except `state_writes`,
    which is 0 by construction under MVCC (merged versions go through
    `storage.write_merged`, not the posting path)."""
    root = tmp_path_factory.mktemp("difftier-mvcc")
    interp = _replay(
        str(root / "interp"), script, compiled_enabled=False, trigger_cc="mvcc"
    )
    compiled = _replay(
        str(root / "compiled"), script, compiled_enabled=True, trigger_cc="mvcc"
    )
    assert compiled[0] == interp[0]  # firing order, incl. deferred drain
    assert compiled[1] == interp[1]  # surviving states + statenums
    assert compiled[2] == interp[2]  # posting.* counters
    assert interp[2]["state_writes"] == 0
    # And across schemes: MVCC commits the same states 2PL would.
    baseline = _replay(str(root / "2pl"), script, compiled_enabled=True)
    assert compiled[1] == baseline[1]


def test_fast_path_engages_and_impure_falls_back(tmp_path):
    script = [["tick", "tock", "bump"], ["inc", "inc", "inc", "inc", "tick"]]
    fired, _states, stats, tier_counters = _replay(
        str(tmp_path / "engage"), script, compiled_enabled=True
    )
    # Six postings saw 4 compilable machines; the Impure trigger fell
    # back on each with an ODE4xx verdict cached in the tier.
    assert tier_counters["compiled_hits"] > 0
    assert tier_counters["compiled_fallbacks"] > 0
    assert stats["fsm_advances"] == (
        tier_counters["compiled_hits"] + tier_counters["compiled_fallbacks"]
    )
    assert "Impure" in fired  # the fallback still fires correctly

    tier = global_compiled_tier()
    metatype = TierGadget.__metatype__
    for name in COMPILABLE_TRIGGERS:
        info = metatype.trigger_by_name(name)
        assert tier.explain(info) == ()
        assert tier.artifact_for(info) is not None
        assert "def _advance" in tier.artifact_for(info).source
    impure = metatype.trigger_by_name("Impure")
    assert tier.artifact_for(impure) is None
    assert [d.code for d in tier.explain(impure)] == ["ODE400"]


def test_verdicts_match_tier_behaviour():
    metatype = TierGadget.__metatype__
    for name in COMPILABLE_TRIGGERS:
        verdict = classify_trigger(metatype.trigger_by_name(name), metatype)
        assert verdict.compilable, (name, verdict.diagnostics)
    verdict = classify_trigger(metatype.trigger_by_name("Impure"), metatype)
    assert not verdict.compilable
    assert "ODE400" in verdict.codes


class LocalProbe(Monitored):
    """Local-rule twin of TierGadget for the LocalTriggerSystem fast path."""

    __events__ = ["Tick", "Tock"]
    __masks__ = {"hot": lambda self: self.n > 3}
    __triggers__ = [
        trigger(
            "Pair",
            "Tick, Tock",
            action=lambda self, ctx: _FIRED.append("Pair"),
            perpetual=True,
        ),
        trigger(
            "Hot",
            "Tick & hot",
            action=lambda self, ctx: _FIRED.append("Hot"),
            perpetual=True,
        ),
    ]

    def __init__(self):
        self.n = 0


def test_local_rules_take_fast_path_with_same_behaviour():
    results = []
    for enabled in (False, True):
        system = LocalTriggerSystem()
        system.compiled_enabled = enabled
        obj = LocalProbe()
        handle = system.monitor(obj)
        handle.Pair()
        handle.Hot()
        _FIRED.clear()
        for event in ("Tick", "Tock", "Tick"):
            handle.post_event(event)
        obj.n = 9
        handle.post_event("Tick")
        results.append(
            (list(_FIRED), system.stats.masks_evaluated_posting,
             system.stats.fsm_advances, system.stats.compiled_hits)
        )
    (interp_fired, interp_masks, interp_adv, interp_hits) = results[0]
    (comp_fired, comp_masks, comp_adv, comp_hits) = results[1]
    assert comp_fired == interp_fired
    assert comp_masks == interp_masks
    assert comp_adv == interp_adv
    assert interp_hits == 0 and comp_hits > 0


# ---------------------------------------------------------------------------
# Invalidation (satellite: stale-closure firing is the scary bug)
# ---------------------------------------------------------------------------


def _define_stale_demo(tag):
    """(Re)define a class named StaleDemo whose action logs *tag*."""
    return type(
        "StaleDemo",
        (Persistent,),
        {
            "__events__": ["Ping"],
            "__triggers__": [
                trigger(
                    "Watch",
                    "Ping",
                    action=lambda self, ctx, _tag=tag: _FIRED.append(_tag),
                    perpetual=True,
                )
            ],
        },
    )


def test_class_compilation_and_strict_flip_bump_schema_version():
    before = schema_version()
    _define_stale_demo("v-bump")
    assert schema_version() == before + 1
    assert "StaleDemo" in last_bump_reason()

    before = schema_version()
    previous = set_strict_analysis(True)
    try:
        assert schema_version() == before + 1
        assert "strict_analysis" in last_bump_reason()
    finally:
        set_strict_analysis(previous)
    assert schema_version() == before + 2  # restoring flips again


def test_register_shim_bumps_schema_version():
    from repro.objects.metatype import global_type_registry

    before = schema_version()
    global_type_registry().register_shim(
        "CompiledTierShimFixture", object()
    )
    assert schema_version() == before + 1


def test_bump_evicts_cached_artifacts():
    tier = global_compiled_tier()
    metatype = TierGadget.__metatype__
    info = metatype.trigger_by_name("Pair")
    assert tier.advancer_for(info, metatype) is not None
    assert tier.cached_count() > 0
    _define_stale_demo("evict")
    assert tier.cached_count() == 0  # version check dropped everything
    assert tier.advancer_for(info, metatype) is not None  # recompiles


def test_redefined_class_never_fires_stale_closure(tmp_path):
    _define_stale_demo("v1")
    db = Database.open(str(tmp_path / "stale"), engine="mm")
    try:
        cls_v1 = db.registry.find("StaleDemo").pyclass
        with db.transaction():
            h = db.pnew(cls_v1)
            ptr = h.ptr
            h.Watch()
        _FIRED.clear()
        with db.transaction():
            h = db.deref(ptr)
            h.post_event("Ping")  # compiled against v1
            # Mid-transaction redefinition: the schema version bumps, the
            # per-txn cache's pinned version goes stale, and the very next
            # posting must resolve the *new* trigger info.
            _define_stale_demo("v2")
            h.post_event("Ping")
        assert _FIRED == ["v1", "v2"]
        # And across transactions too.
        _FIRED.clear()
        with db.transaction():
            db.deref(ptr).post_event("Ping")
        assert _FIRED == ["v2"]
    finally:
        db.close()


def test_deactivation_purges_txn_cache(tmp_path):
    db = Database.open(str(tmp_path / "purge"), engine="mm")
    try:
        with db.transaction():
            h = db.pnew(TierGadget)
            ptr = h.ptr
            h.Low(1)  # once-only: fires, then deactivates mid-transaction
            h.Pair()
        _FIRED.clear()
        with db.transaction():
            h = db.deref(ptr)
            h.n = -5
            h.post_event("Bump")  # Low fires and self-deactivates
            h.post_event("Bump")  # its cached closure must be gone
            h.post_event("Tick")
        assert _FIRED.count("Low") == 1
        with db.transaction():
            names = [
                info.name
                for _, _ts, info in db.trigger_system.active_triggers(ptr)
            ]
        assert names == ["Pair"]
    finally:
        db.close()


def test_obs_tracing_forces_interpreter(tmp_path):
    db = Database.open(str(tmp_path / "traced"), engine="mm")
    try:
        with db.transaction():
            h = db.pnew(TierGadget)
            ptr = h.ptr
            h.Hot()
        stats = db.trigger_system.stats
        stats.reset()
        obs.enable(capacity=4096)
        try:
            with db.transaction():
                db.deref(ptr).post_event("Tick")
        finally:
            recorder = obs.disable()
        assert stats.compiled_hits == 0  # tracing wants per-mask events
        assert any(r.kind == "mask.eval" for r in recorder.records())
        with db.transaction():
            db.deref(ptr).post_event("Tick")
        assert stats.compiled_hits == 1
    finally:
        db.close()


# ---------------------------------------------------------------------------
# The five judgments
# ---------------------------------------------------------------------------


def _single_trigger_class(name, **trigger_kwargs):
    kwargs = {"action": lambda self, ctx: None, "perpetual": True}
    kwargs.update(trigger_kwargs)
    expression = kwargs.pop("expression", "Go")
    events = kwargs.pop("events", ["Go"])
    masks = kwargs.pop("class_masks", {})
    return type(
        name,
        (Persistent,),
        {
            "__events__": events,
            "__masks__": masks,
            "__triggers__": [trigger("T", expression, **kwargs)],
        },
    )


def _codes_for(cls):
    metatype = cls.__metatype__
    return classify_trigger(metatype.trigger_infos[0], metatype).codes


def test_ode400_impure_mask():
    cls = _single_trigger_class(
        "Ode400Fixture",
        expression="Go & dirty",
        masks={"dirty": lambda self: setattr(self, "probe", 1) or True},
    )
    assert "ODE400" in _codes_for(cls)


def test_ode401_unresolvable_free_name():
    cls = _single_trigger_class(
        "Ode401Fixture",
        expression="Go & phantom",
        masks={"phantom": lambda self: _no_such_helper_anywhere(self)},  # noqa: F821
    )
    assert "ODE401" in _codes_for(cls)


def test_ode402_machine_too_large(monkeypatch):
    from repro.analysis import compilable

    monkeypatch.setattr(compilable, "MAX_FSM_STATES", 0)
    cls = _single_trigger_class("Ode402Fixture")
    codes = _codes_for(cls)
    assert codes == ("ODE402",)


def test_ode402_unroll_budget(monkeypatch):
    from repro.core import compiled

    monkeypatch.setattr(compiled, "UNROLL_BUDGET", 1)
    metatype = TierGadget.__metatype__
    verdict = classify_trigger(metatype.trigger_by_name("Hot"), metatype)
    assert "ODE402" in verdict.codes


def test_ode403_immediate_action_reenters():
    cls = _single_trigger_class(
        "Ode403Fixture",
        events=["Go", "Echo"],
        posts=("Echo",),
    )
    assert "ODE403" in _codes_for(cls)
    # Deferred coupling runs after the advance completes: exempt.
    deferred = _single_trigger_class(
        "Ode403Deferred",
        events=["Go", "Echo"],
        posts=("Echo",),
        coupling="end",
    )
    assert "ODE403" not in _codes_for(deferred)


def test_ode404_unknown_action_effects():
    cls = _single_trigger_class(
        "Ode404Fixture",
        action=eval("lambda self, ctx: None"),  # no retrievable source
    )
    assert "ODE404" in _codes_for(cls)


def test_every_judgment_falls_back_cleanly(tmp_path):
    """A non-compilable trigger must still post and fire via the interpreter."""
    hits = []
    cls = _single_trigger_class(
        "FallbackFixture",
        expression="Go & dirty",
        masks={"dirty": lambda self: setattr(self, "probe", 1) or True},
        action=lambda self, ctx, _hits=hits: _hits.append("fired"),
    )
    db = Database.open(str(tmp_path / "fallback"), engine="mm")
    try:
        stats = db.trigger_system.stats
        with db.transaction():
            h = db.pnew(cls)
            h.T()
            stats.reset()
            h.post_event("Go")
        assert hits == ["fired"]
        assert stats.compiled_fallbacks == 1
        assert stats.compiled_hits == 0
        info = cls.__metatype__.trigger_infos[0]
        codes = [d.code for d in global_compiled_tier().explain(info)]
        assert "ODE400" in codes
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Analysis surfaces
# ---------------------------------------------------------------------------


def test_analyze_classes_opt_in_pass():
    from repro.analysis import analyze_classes

    cls = _single_trigger_class(
        "SurfaceFixture",
        expression="Go & dirty",
        masks={"dirty": lambda self: setattr(self, "probe", 1) or True},
    )
    without = analyze_classes([cls])
    assert "ODE400" not in without.codes()
    with_pass = analyze_classes([cls], compilability=True)
    assert "ODE400" in with_pass.codes()


def test_ode205_is_pass_aware_for_ode4xx():
    from repro.analysis import analyze_classes

    cls = _single_trigger_class(
        "SuppressFixture", suppress=("ODE400",)
    )  # compilable trigger: the suppression is stale iff the pass runs
    without = analyze_classes([cls])
    assert not [
        d for d in without.by_code("ODE205") if "ODE400" in d.message
    ]
    with_pass = analyze_classes([cls], compilability=True)
    assert [d for d in with_pass.by_code("ODE205") if "ODE400" in d.message]


def test_check_triggers_and_metrics_surface(tmp_path):
    db = Database.open(str(tmp_path / "surface"), engine="mm")
    try:
        report = db.check_triggers([TierGadget], compilability=True)
        assert "ODE400" in report.codes()
        with db.transaction():
            h = db.pnew(TierGadget)
            h.Pair()
            h.post_event("Tick")
        snapshot = db.metrics.snapshot()
        assert snapshot["posting.compiled_hits"] >= 1
        assert "posting.compiled_fallbacks" in snapshot
    finally:
        db.close()


def test_transition_table_export():
    from repro.events.dfa import transition_table

    info = TierGadget.__metatype__.trigger_by_name("Hot")
    table = transition_table(info.fsm)
    assert len(table) == len(info.fsm)
    assert all(
        set(row) == {"state", "accept", "masks", "transitions"} for row in table
    )
    # The symbolic compile-time machine exports through the same helper.
    symbolic = transition_table(info.compiled.fsm)
    assert len(symbolic) == len(table)
