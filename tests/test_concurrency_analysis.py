"""ODE3xx static concurrency analysis: footprints, witnesses, ODE310.

Per-code gadget classes isolate each finding (each suppresses the other
two, so one class produces exactly one ODE3xx code), the locksim and
credit-card workloads provide the acceptance targets from the paper's
Section 6, and the dynamic lockset checker is exercised both on a
synthetic contradictory trace and on real ``repro.obs`` captures (live
and after a JSONL round-trip).  The threaded class at the bottom runs
under ``pytest -m concurrency`` and shows that a scheduler-CONFIRMED
ODE301 prediction deadlocks for real with preemptive threads.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.analysis import (
    analyze_classes,
    check_lock_trace,
    infer_lock_footprint,
    observed_lock_profile,
    static_lock_profile,
)
from repro.analysis.concurrency import (
    advancing_symbols,
    replay_witness,
    start_advancing_symbols,
)
from repro.core.declarations import trigger
from repro.obs.trace import TraceRecord, records_from_jsonl, records_to_jsonl
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.workloads.credit_card import CredCard, CreditCardWorkload
from repro.workloads.locksim import HotObject, run_hot_set

pytestmark = pytest.mark.analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def _ode3(report):
    """The ODE3xx subset of a report, post-suppression."""
    return [d for d in report.diagnostics if d.code.startswith("ODE3")]


# --------------------------------------------------------------------------
# gadget classes — one ODE3xx code each (the other two acknowledged)


def _noop(self, ctx):
    pass


class AmplifyGadget(Persistent):
    """ODE300 isolated: a user event drives a sequence machine, so a
    read-only poster takes X on the TriggerState."""

    n = field(int, default=0)

    __events__ = ["Go"]
    __triggers__ = [
        trigger(
            "Amp",
            "Go, Go",
            action=_noop,
            perpetual=True,
            suppress=("ODE301", "ODE302"),
        )
    ]


class CycleGadget(Persistent):
    """ODE301 isolated: the per-instance X on the TriggerState gives the
    multi-instance self-edge, so two sessions visiting two instances in
    opposite orders close the cycle."""

    __events__ = ["Tick"]
    __triggers__ = [
        trigger(
            "Spin",
            "Tick",
            action=_noop,
            perpetual=True,
            suppress=("ODE300", "ODE302"),
        )
    ]


class UpgradeGadget(Persistent):
    """ODE302 isolated: ``Fire`` at the start state only reads the
    TriggerState (S); ``Arm`` advances (X) — the classic upgrade race."""

    __events__ = ["Arm", "Fire"]
    __triggers__ = [
        trigger(
            "Up",
            "Arm, Fire",
            action=_noop,
            perpetual=True,
            suppress=("ODE300", "ODE301"),
        )
    ]


class WriterOnlyGadget(Persistent):
    """ODE300 negative control: the only watched event wraps a member
    function that writes, so no posting path is read-only."""

    total = field(int, default=0)

    __events__ = ["after bump"]
    __triggers__ = [
        trigger(
            "Tally",
            "after bump",
            action=_noop,
            perpetual=True,
            suppress=("ODE301", "ODE302"),
        )
    ]

    def bump(self):
        self.total += 1


class InertBox(Persistent):
    """Zero-trigger control: no footprints, no ODE3xx, empty static
    profile (its name also anchors the synthetic ODE310 traces)."""

    payload = field(int, default=0)

    __events__ = ["Poke"]


class StaleDynamicSuppress(Persistent):
    """ODE310 is dynamic-only, so suppressing it statically is stale —
    but only judgeable when the concurrency pass actually runs."""

    __events__ = ["Hop"]
    __triggers__ = [
        trigger(
            "Jumpy",
            "Hop",
            action=_noop,
            perpetual=True,
            suppress=("ODE300", "ODE301", "ODE302", "ODE310"),
        )
    ]


# --------------------------------------------------------------------------
# shared expensive captures


@pytest.fixture(scope="module")
def locksim_trace():
    """One traced locksim run: (obs records, WorkloadResult)."""
    trace: list[TraceRecord] = []
    result = run_hot_set(
        4, 2, n_sessions=4, transactions=24, seed=1996, trace_out=trace
    )
    return trace, result


# --------------------------------------------------------------------------
# footprint inference


class TestFootprintInference:
    def test_watch_footprint_order(self):
        metatype = HotObject.__metatype__
        (info,) = metatype.trigger_infos
        fp = infer_lock_footprint(info, metatype)
        # The paper's Section 5.4.5 posting path, in acquisition order:
        # dereference, index lookup, state read, state write-back.
        assert [(s.resource, s.mode) for s in fp.steps] == [
            ("object:HotObject", "S"),
            ("meta:index", "S"),
            ("state:HotObject.Watch", "S"),
            ("state:HotObject.Watch", "X"),
        ]
        assert fp.advancing == frozenset({"Ping", "Pong"})
        assert fp.readonly_postable >= frozenset({"Ping", "Pong"})
        assert not fp.detached_action
        assert fp.upgrades() == (
            ("state:HotObject.Watch", ("object:HotObject", "meta:index")),
        )
        assert "X(state:HotObject.Watch)" in fp.describe()

    def test_watched_writer_takes_object_exclusive(self):
        metatype = WriterOnlyGadget.__metatype__
        (info,) = metatype.trigger_infos
        fp = infer_lock_footprint(info, metatype)
        object_x = [
            s
            for s in fp.x_steps()
            if s.resource == "object:WriterOnlyGadget"
        ]
        assert object_x and object_x[0].why.startswith(
            "watched member function"
        )
        # bump() writes, so nothing is postable read-only.
        assert fp.readonly_postable == frozenset()

    def test_advancing_vs_start_advancing(self):
        (info,) = UpgradeGadget.__metatype__.trigger_infos
        assert advancing_symbols(info.compiled) == frozenset({"Arm", "Fire"})
        # Fire only advances once Arm has moved the machine off start.
        assert start_advancing_symbols(info.compiled) == frozenset({"Arm"})

    def test_action_writer_includes_anchor_exclusive(self):
        metatype = CredCard.__metatype__
        infos = {i.name: i for i in metatype.trigger_infos}
        fp = infer_lock_footprint(infos["AutoPayDown"], metatype)
        assert "object:CredCard" in {s.resource for s in fp.x_steps()}


# --------------------------------------------------------------------------
# static passes (ODE300 / ODE301 / ODE302)


class TestStaticPasses:
    def test_ode300_isolated(self):
        report = analyze_classes([AmplifyGadget], concurrency=True)
        findings = _ode3(report)
        assert [d.code for d in findings] == ["ODE300"]
        message = findings[0].message
        assert "X(state:AmplifyGadget.Amp)" in message
        assert "'Go'" in message
        assert "read access becomes write access" in message

    def test_ode300_needs_a_readonly_poster(self):
        report = analyze_classes([WriterOnlyGadget], concurrency=True)
        assert _ode3(report) == []

    def test_ode301_isolated_and_possible_without_confirm(self):
        report = analyze_classes([CycleGadget], concurrency=True)
        findings = _ode3(report)
        assert [d.code for d in findings] == ["ODE301"]
        assert "state:CycleGadget.Spin" in findings[0].message
        assert "POSSIBLE" in findings[0].message

    def test_ode301_confirmed_by_witness(self):
        report = analyze_classes(
            [CycleGadget], concurrency=True, confirm_witnesses=True
        )
        (finding,) = _ode3(report)
        assert finding.code == "ODE301"
        assert "CONFIRMED" in finding.message

    def test_ode302_confirmed_by_witness(self):
        report = analyze_classes(
            [UpgradeGadget], concurrency=True, confirm_witnesses=True
        )
        (finding,) = _ode3(report)
        assert finding.code == "ODE302"
        assert "state:UpgradeGadget.Up" in finding.message
        assert "CONFIRMED" in finding.message

    def test_no_triggers_no_findings(self):
        assert _ode3(analyze_classes([InertBox], concurrency=True)) == []

    def test_pass_is_opt_in(self):
        assert _ode3(analyze_classes([AmplifyGadget])) == []

    def test_witness_handles_unbuildable_plans(self):
        metatype = CredCard.__metatype__
        infos = {i.name: i for i in metatype.trigger_infos}
        # AutoRaiseLimit takes an activation parameter, so the witness
        # degrades to POSSIBLE instead of raising.
        witness = replay_witness(metatype, infos["AutoRaiseLimit"], "cross")
        assert not witness.confirmed
        assert witness.tag().startswith("POSSIBLE")

    def test_locksim_acceptance(self):
        """ISSUE acceptance: ODE300 on Watch with the exact amplifying X
        set, and a scheduler-CONFIRMED ODE301 cycle."""
        report = analyze_classes(
            [HotObject], concurrency=True, confirm_witnesses=True
        )
        codes = {d.code for d in _ode3(report)}
        assert {"ODE300", "ODE301", "ODE302"} <= codes
        (ode300,) = report.by_code("ODE300")
        assert str(ode300.location) == "HotObject.Watch"
        assert "X(state:HotObject.Watch)" in ode300.message
        assert "'Ping', 'Pong'" in ode300.message
        assert any(
            "CONFIRMED" in d.message for d in report.by_code("ODE301")
        )


# --------------------------------------------------------------------------
# suppression interplay


class TestSuppressionInterplay:
    def test_stale_dynamic_suppress_flagged_when_pass_runs(self):
        report = analyze_classes([StaleDynamicSuppress], concurrency=True)
        stale = report.by_code("ODE205")
        assert len(stale) == 1
        assert "'ODE310'" in stale[0].message
        # The three genuinely-produced codes are acknowledged, not stale.
        assert _ode3(report) == []

    def test_ode3_suppressions_unjudged_when_pass_off(self):
        report = analyze_classes([StaleDynamicSuppress])
        assert report.by_code("ODE205") == []


# --------------------------------------------------------------------------
# the dynamic lockset checker (ODE310)


def _synthetic_trace() -> list[TraceRecord]:
    """A trace that contradicts InertBox's (empty) static model three
    ways: unpredicted X, unpredicted upgrade, unpredicted deadlock."""
    return [
        TraceRecord(
            seq=1,
            ts=0.0,
            kind="post.begin",
            span=1,
            data=(("rid", 7), ("type", "InertBox")),
        ),
        TraceRecord(
            seq=2,
            ts=0.001,
            kind="lock.acquire",
            span=1,
            data=(("txid", 1), ("resource", 7), ("mode", "S"), ("upgrade", False)),
        ),
        TraceRecord(
            seq=3,
            ts=0.002,
            kind="lock.acquire",
            span=1,
            data=(("txid", 1), ("resource", 7), ("mode", "X"), ("upgrade", True)),
        ),
        TraceRecord(
            seq=4,
            ts=0.003,
            kind="lock.deadlock",
            span=1,
            data=(("txid", 2), ("cycle", [2, 1])),
        ),
    ]


class TestDynamicLockset:
    def test_synthetic_contradictions(self):
        findings = check_lock_trace(
            _synthetic_trace(), [InertBox.__metatype__]
        )
        assert [d.code for d in findings] == ["ODE310"] * 3
        messages = " | ".join(d.message for d in findings)
        assert "acquired X(object:InertBox)" in messages
        assert "upgraded object:InertBox" in messages
        assert "predicts no cycle" in messages

    def test_jsonl_round_trip_preserves_findings(self):
        records = _synthetic_trace()
        reloaded = records_from_jsonl(records_to_jsonl(records))
        assert reloaded == records
        direct = check_lock_trace(records, [InertBox.__metatype__])
        via_jsonl = check_lock_trace(reloaded, [InertBox.__metatype__])
        assert [(d.code, d.message) for d in direct] == [
            (d.code, d.message) for d in via_jsonl
        ]

    def test_wait_only_grants_still_count(self):
        """A lock granted after waiting emits only ``lock.wait`` — the
        checker must still see the acquisition."""
        records = [
            TraceRecord(
                seq=1,
                ts=0.0,
                kind="post.begin",
                span=1,
                data=(("rid", 9), ("type", "InertBox")),
            ),
            TraceRecord(
                seq=2,
                ts=0.001,
                kind="lock.wait",
                span=1,
                data=(("txid", 3), ("resource", 9), ("mode", "X"), ("blockers", [1])),
            ),
        ]
        findings = check_lock_trace(records, [InertBox.__metatype__])
        assert [d.code for d in findings] == ["ODE310"]
        assert "X(object:InertBox)" in findings[0].message

    def test_locksim_trace_is_model_clean(self, locksim_trace):
        """ISSUE acceptance: the dynamic checker round-trips an E6-style
        trace without contradicting the static lock-order graph."""
        trace, result = locksim_trace
        assert trace, "tracing captured nothing"
        assert result.deadlock_aborts > 0  # the run actually contended
        metatypes = [HotObject.__metatype__]
        assert check_lock_trace(trace, metatypes) == []
        reloaded = records_from_jsonl(records_to_jsonl(trace))
        assert check_lock_trace(reloaded, metatypes) == []

    def test_observed_profile_within_static_locksim(self, locksim_trace):
        """Property: footprint inference over-approximates every traced
        object/state acquisition (meta records are engine plumbing the
        per-posting footprints do not name rid-by-rid)."""
        trace, _ = locksim_trace
        metatypes = [HotObject.__metatype__]
        observed = observed_lock_profile(trace, metatypes)
        static = static_lock_profile(metatypes)
        checked = 0
        for cls, modes in observed.items():
            if cls.split(":", 1)[0] not in ("object", "state"):
                continue
            checked += 1
            assert modes <= static.get(cls, set()), cls
        assert checked >= 2  # object:HotObject and state:HotObject.Watch
        assert "X" in observed["state:HotObject.Watch"]

    def test_observed_profile_within_static_credit_card(self, mm_db):
        workload = CreditCardWorkload(seed=7)
        ptrs = workload.setup(
            mm_db, 4, activate_deny=True, activate_raise=True
        )
        with obs.enabled() as recorder:
            workload.run(mm_db, ptrs, 60)
            records = recorder.records()
        assert records
        metatypes = [CredCard.__metatype__]
        observed = observed_lock_profile(records, metatypes)
        static = static_lock_profile(metatypes)
        for cls, modes in observed.items():
            if cls.split(":", 1)[0] not in ("object", "state"):
                continue
            assert modes <= static.get(cls, set()), cls
        # buy() writes the card, so the object class must be observed X
        # and statically predicted X.
        assert "X" in observed["object:CredCard"]
        assert "X" in static["object:CredCard"]


# --------------------------------------------------------------------------
# determinism of the cooperative workload (and its retry backoff)


class TestDeterminism:
    def test_run_hot_set_is_replayable(self):
        first = run_hot_set(3, 1, n_sessions=3, transactions=9, seed=7)
        second = run_hot_set(3, 1, n_sessions=3, transactions=9, seed=7)
        assert first.key() == second.key()
        assert first.committed == 9


# --------------------------------------------------------------------------
# Database.check_triggers wiring


class TestCheckTriggersWiring:
    def test_concurrency_kwarg_enables_the_pass(self, mm_db):
        report = mm_db.check_triggers(targets=[HotObject], concurrency=True)
        assert {d.code for d in _ode3(report)} >= {"ODE300", "ODE301"}

    def test_default_stays_quiet(self, mm_db):
        report = mm_db.check_triggers(targets=[HotObject])
        assert _ode3(report) == []


# --------------------------------------------------------------------------
# CLI contract (subprocesses, so gadget classes cannot leak)


class TestCommandLine:
    def test_concurrency_json_findings(self):
        proc = _run_cli(
            "src/repro/workloads/locksim.py",
            "--concurrency",
            "--no-confirm",
            "--format",
            "json",
        )
        assert proc.returncode == 0, proc.stderr  # warnings < error
        payload = json.loads(proc.stdout)
        codes = {d["code"] for d in payload}
        assert {"ODE300", "ODE301", "ODE302"} <= codes

    def test_fail_on_warning_crosses_threshold(self):
        proc = _run_cli(
            "src/repro/workloads/locksim.py",
            "--concurrency",
            "--no-confirm",
            "--fail-on",
            "warning",
        )
        assert proc.returncode == 1

    def test_examples_self_check_stays_clean(self):
        proc = _run_cli(
            "--self-check", "examples", "--concurrency", "--no-confirm"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# --------------------------------------------------------------------------
# threaded confirmation (pytest -m concurrency)


@pytest.mark.concurrency
class TestThreadedConfirmation:
    def test_confirmed_cycle_deadlocks_with_real_threads(self, mm_db):
        """The scheduler-CONFIRMED ODE301 prediction on HotObject is not
        an artifact of cooperative scheduling: preemptive threads posting
        to two instances in opposite orders deadlock (and recover) too."""
        report = analyze_classes(
            [HotObject], concurrency=True, confirm_witnesses=True
        )
        assert any(
            "CONFIRMED" in d.message for d in report.by_code("ODE301")
        )

        db = mm_db
        with db.transaction():
            handles = [db.pnew(HotObject) for _ in range(2)]
            for handle in handles:
                handle.Watch()
            ptrs = [h.ptr for h in handles]

        stats = db.storage.lock_manager.stats
        deadlocks_before = stats.deadlocks
        n_threads, txns_each = 8, 30
        committed = []
        errors = []

        def worker(index):
            session = db.session(f"cross-{index}")
            order = ptrs if index % 2 == 0 else list(reversed(ptrs))
            try:
                for _ in range(txns_each):

                    def body(txn):
                        for ptr in order:
                            handle = session.deref(ptr)
                            handle.post_event("Ping")
                            handle.post_event("Pong")

                    session.run(body, retries=500)
                    committed.append(index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"cross-{i}")
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # Conservation: every transaction committed exactly once despite
        # deadlock victims being aborted and retried.
        assert len(committed) == n_threads * txns_each
        assert db.session_stats.retry_exhausted == 0
        # The predicted cross-order cycle materialized under real threads.
        assert stats.deadlocks > deadlocks_before
