"""Concurrent crash-matrix tests: N sessions, crash at storage failpoints.

Tier-1 runs the bounded cooperative subset on both engines; the exhaustive
matrices (every hit in the trace) carry the ``crash_matrix`` marker, and
the threaded smoke subset (nondeterministic interleavings, real threads)
carries ``concurrency`` — same split as the serial matrix in
``test_crash_matrix.py``.
"""

import pytest

from repro.faults.concurrent import (
    crash_and_verify_concurrent,
    explore_concurrent,
    record_concurrent_trace,
)

#: The full failpoint union the ISSUE's acceptance criterion names: 17 on
#: disk + the two mm-only snapshot points.
ALL_POINTS = {
    "checkpoint.after_flush",
    "checkpoint.before_truncate",
    "checkpoint.begin",
    "checkpoint.end",
    "page.read",
    "page.write",
    "page.sync",
    "pool.evict",
    "phoenix.drain.before_handler",
    "phoenix.drain.after_handler",
    "phoenix.drain.before_commit",
    "txn.commit.begin",
    "txn.commit.durable",
    "wal.append",
    "wal.force",
    "wal.force.after",
    "wal.truncate",
    "snapshot.write",
    "snapshot.replace",
}


def test_concurrent_trace_is_deterministic(tmp_path):
    """The cooperative scheduler replays: two runs at equal-length paths
    (path bytes leak into record sizes) produce identical hit traces —
    including every deadlock-retry the contention produced."""
    a = record_concurrent_trace(str(tmp_path / "a"), engine="mm")
    b = record_concurrent_trace(str(tmp_path / "b"), engine="mm")
    assert [(r.index, r.point) for r in a] == [(r.index, r.point) for r in b]


def test_quick_subset_disk(tmp_path):
    """Tier-1's bounded subset: select_hits explores the first hit of
    every distinct trace point (the limit only caps the extras), so even
    a small limit crashes once at each of disk's 17 failpoints."""
    result = explore_concurrent(str(tmp_path / "m"), limit=8)
    assert len(result.explored) >= 15
    assert result.points_explored == ALL_POINTS - {
        "snapshot.write",
        "snapshot.replace",
    }
    assert {"wal", "page", "txn", "phoenix", "checkpoint", "pool"} == (
        result.families_explored
    )
    report = result.survival_report()
    assert report["recovered"] == report["crashes_explored"] == len(result.explored)
    assert report["survival_rate"] == 1.0


def test_quick_subset_mm(tmp_path):
    result = explore_concurrent(str(tmp_path / "m"), engine="mm", limit=6)
    assert len(result.explored) >= 10
    assert {"snapshot.write", "snapshot.replace"} <= result.points_explored
    assert {"wal", "txn", "phoenix", "checkpoint", "snapshot"} == (
        result.families_explored
    )


@pytest.mark.crash_matrix
def test_every_hit_on_both_engines_covers_all_nineteen_points(tmp_path):
    """The tentpole's acceptance criterion: crash at *every* failpoint hit
    of the 4-session cooperative trace, on both engines, and recover —
    the union of actual crash points is the full 19-point set."""
    disk = explore_concurrent(str(tmp_path / "d"))
    mm = explore_concurrent(str(tmp_path / "e"), engine="mm")
    assert len(disk.explored) == len(disk.trace) >= 400
    assert len(mm.explored) == len(mm.trace) >= 300
    assert disk.points_explored | mm.points_explored == ALL_POINTS
    assert {"snapshot.write", "snapshot.replace"} <= mm.points_explored


@pytest.mark.concurrency
class TestThreadedSmoke:
    """Real threads: the crash lands wherever the race put hit *k*; the
    oracle must hold regardless.  ``require_crash=False`` because a
    threaded run may commit fewer retried transactions than the crash
    index assumes."""

    @pytest.mark.parametrize("crash_at", [5, 40, 120, 260])
    def test_disk(self, tmp_path, crash_at):
        crash_and_verify_concurrent(
            str(tmp_path / f"t{crash_at}"),
            crash_at,
            "threaded",
            mode="threaded",
            require_crash=False,
        )

    @pytest.mark.parametrize("crash_at", [10, 80, 200])
    def test_mm(self, tmp_path, crash_at):
        crash_and_verify_concurrent(
            str(tmp_path / f"t{crash_at}"),
            crash_at,
            "threaded",
            engine="mm",
            mode="threaded",
            require_crash=False,
        )

    @pytest.mark.parametrize("engine,crash_at", [("disk", 60), ("disk", 180), ("mm", 90)])
    def test_group_commit(self, tmp_path, engine, crash_at):
        """Real threads + WAL group commit: the crash can land inside a
        batched fsync with followers parked on the leader.  Whole-batch
        atomicity (acked commits durable, unacked ones wholly gone) must
        satisfy the same oracle."""
        crash_and_verify_concurrent(
            str(tmp_path / f"g{crash_at}"),
            crash_at,
            "threaded",
            engine=engine,
            mode="threaded",
            require_crash=False,
            group_commit=True,
        )
