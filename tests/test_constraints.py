"""Constraints-as-triggers tests (Section 8 extension)."""

import pytest

from repro.core.constraints import activate_constraints, constraint_infos
from repro.errors import ConstraintViolationError, TriggerDeclarationError
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Account(Persistent):
    balance = field(float, default=0.0)
    limit = field(float, default=100.0)

    __events__ = ["after deposit", "after withdraw", "after set_limit"]
    __constraints__ = {
        "non_negative": lambda self: self.balance >= 0,
        "within_limit": lambda self: self.balance <= self.limit,
    }

    def deposit(self, amount):
        self.balance += amount

    def withdraw(self, amount):
        self.balance -= amount

    def set_limit(self, limit):
        self.limit = limit


class TestDeclaration:
    def test_constraints_compiled_as_triggers(self):
        infos = constraint_infos(Account)
        assert {i.name for i in infos} == {
            "__constraint_non_negative",
            "__constraint_within_limit",
        }
        assert all(i.perpetual for i in infos)

    def test_constraints_without_events_rejected(self):
        with pytest.raises(TriggerDeclarationError, match="no events"):

            class Bad(Persistent):
                v = field(int, default=0)
                __constraints__ = {"positive": lambda self: self.v > 0}

    def test_non_callable_predicate_rejected(self):
        with pytest.raises(TriggerDeclarationError):

            class AlsoBad(Persistent):
                v = field(int, default=0)
                __events__ = ["after poke"]
                __constraints__ = {"broken": "not callable"}

                def poke(self):
                    pass


class TestEnforcement:
    def test_violation_aborts_and_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Account).ptr
            db.deref(ptr).deposit(50.0)
        with pytest.raises(ConstraintViolationError, match="non_negative"):
            with db.transaction():
                db.deref(ptr).withdraw(500.0)
        with db.transaction():
            assert db.deref(ptr).balance == 50.0

    def test_all_constraints_checked(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Account).ptr
        with pytest.raises(ConstraintViolationError, match="within_limit"):
            with db.transaction():
                db.deref(ptr).deposit(150.0)

    def test_valid_updates_pass(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Account).ptr
            acct = db.deref(ptr)
            acct.deposit(80.0)
            acct.withdraw(30.0)
        with db.transaction():
            assert db.deref(ptr).balance == 50.0

    def test_auto_activated_on_pnew(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            handle = db.pnew(Account)
            active = db.trigger_system.active_triggers(handle.ptr)
            assert len(active) == 2

    def test_constraint_depends_on_two_fields(self, any_engine_db):
        """Lowering the limit below the balance trips the constraint."""
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Account).ptr
            db.deref(ptr).deposit(90.0)
        with pytest.raises(ConstraintViolationError):
            with db.transaction():
                db.deref(ptr).set_limit(50.0)
        with db.transaction():
            assert db.deref(ptr).limit == 100.0

    def test_activate_constraints_idempotent(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            handle = db.pnew(Account)
            new_ids = activate_constraints(db, handle)
            assert new_ids == []  # pnew already activated them
            assert len(db.trigger_system.active_triggers(handle.ptr)) == 2

    def test_constraints_survive_reopen(self, db_path):
        from repro.objects.database import Database

        db = Database.open(db_path, engine="disk")
        with db.transaction():
            ptr = db.pnew(Account).ptr
        db.close()
        db2 = Database.open(db_path, engine="disk")
        with pytest.raises(ConstraintViolationError):
            with db2.transaction():
                db2.deref(ptr).withdraw(10.0)
        db2.close()

    def test_inherited_constraints_enforced_on_derived(self, any_engine_db):
        db = any_engine_db

        class PremiumAccount(Account):
            perks = field(list, default=[])

        with db.transaction():
            ptr = db.pnew(PremiumAccount).ptr
        with pytest.raises(ConstraintViolationError):
            with db.transaction():
                db.deref(ptr).withdraw(1.0)
