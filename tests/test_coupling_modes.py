"""Coupling-mode tests: immediate, end (deferred), dependent, !dependent."""

import pytest

from repro.core.declarations import trigger
from repro.errors import TransactionAbort
from repro.objects.persistent import Persistent
from repro.objects.schema import field

AUDIT: list[str] = []


def audit(tag):
    def action(self, ctx):
        AUDIT.append(tag)

    return action


class Audited(Persistent):
    v = field(int, default=0)
    notes = field(list, default=[])

    __events__ = ["Go"]
    __triggers__ = [
        trigger("Immediate", "Go", action=audit("immediate"), perpetual=True),
        trigger("Deferred", "Go", action=audit("end"), coupling="end", perpetual=True),
        trigger(
            "Dependent", "Go", action=audit("dependent"),
            coupling="dependent", perpetual=True,
        ),
        trigger(
            "Independent", "Go", action=audit("independent"),
            coupling="!dependent", perpetual=True,
        ),
    ]


@pytest.fixture(autouse=True)
def _clear_audit():
    AUDIT.clear()
    yield
    AUDIT.clear()


def make_target(db, *activations):
    with db.transaction():
        obj = db.pnew(Audited)
        for name in activations:
            getattr(obj, name)()
        return obj.ptr


class TestImmediate:
    def test_fires_during_posting(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Immediate")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            assert AUDIT == ["immediate"]  # fired before commit


class TestEnd:
    def test_fires_at_commit_not_at_posting(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Deferred")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            assert AUDIT == []  # queued, not yet run
        assert AUDIT == ["end"]

    def test_not_run_if_transaction_aborts(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Deferred")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            raise TransactionAbort()
        assert AUDIT == []

    def test_end_action_can_tabort_commit(self, any_engine_db):
        db = any_engine_db

        class Veto(Persistent):
            v = field(int, default=0)
            __events__ = ["Go"]
            __triggers__ = [
                trigger(
                    "VetoAtCommit", "Go",
                    action=lambda self, ctx: ctx.tabort("vetoed"),
                    coupling="end", perpetual=True,
                )
            ]

        with db.transaction():
            ptr = db.pnew(Veto).ptr
            db.deref(ptr).VetoAtCommit()
        with db.transaction():
            handle = db.deref(ptr)
            handle.v = 99
            handle.post_event("Go")
        # The deferred action aborted the commit: v never changed.
        with db.transaction():
            assert db.deref(ptr).v == 0

    def test_end_actions_fired_by_other_end_actions_drain(self, any_engine_db):
        db = any_engine_db

        class Chained(Persistent):
            log = field(list, default=[])
            __events__ = ["First", "Second"]
            __triggers__ = [
                trigger(
                    "A", "First",
                    action=lambda self, ctx: self.post_second(),
                    coupling="end", perpetual=True,
                ),
                trigger(
                    "B", "Second",
                    action=lambda self, ctx: self.mark(),
                    coupling="end", perpetual=True,
                ),
            ]

            def post_second(self):
                pass  # the handle call below posts the user event

            def mark(self):
                self.log = self.log + ["chained"]

        with db.transaction():
            obj = db.pnew(Chained)
            ptr = obj.ptr
            obj.A()
            obj.B()
        with db.transaction():
            db.deref(ptr).post_event("First")

        def deferred_post(self, ctx):
            pass

        # The chained posting happens through the action; rewrite with an
        # action that posts during the drain:
        with db.transaction():
            handle = db.deref(ptr)
            assert handle.log == []  # A's python action did not post Second


class TestDependent:
    def test_runs_after_commit(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Dependent")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            assert AUDIT == []
        assert AUDIT == ["dependent"]

    def test_discarded_on_abort(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Dependent")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            raise TransactionAbort()
        assert AUDIT == []

    def test_runs_in_separate_system_transaction(self, any_engine_db):
        db = any_engine_db

        class Recorder(Persistent):
            log = field(list, default=[])
            __events__ = ["Go"]
            __triggers__ = [
                trigger(
                    "Dep", "Go",
                    action=lambda self, ctx: self.note(ctx),
                    coupling="dependent", perpetual=True,
                )
            ]

            def note(self, ctx):
                assert ctx.txn.system
                self.log = self.log + ["ran"]

        with db.transaction():
            obj = db.pnew(Recorder)
            ptr = obj.ptr
            obj.Dep()
        detecting_txn_ids = set(db.txn_manager.outcomes)
        with db.transaction():
            db.deref(ptr).post_event("Go")
        with db.transaction():
            assert db.deref(ptr).log == ["ran"]


class TestIndependent:
    def test_runs_after_commit(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Independent")
        with db.transaction():
            db.deref(ptr).post_event("Go")
        assert AUDIT == ["independent"]

    def test_runs_even_after_abort(self, any_engine_db):
        """The defining property: !dependent survives the detector's abort."""
        db = any_engine_db
        ptr = make_target(db, "Independent")
        with db.transaction():
            db.deref(ptr).post_event("Go")
            raise TransactionAbort()
        assert AUDIT == ["independent"]

    def test_independent_changes_survive_detector_abort(self, any_engine_db):
        db = any_engine_db

        class SideEffect(Persistent):
            spawned = field(int, default=0)
            __events__ = ["Go"]
            __triggers__ = [
                trigger(
                    "Indep", "Go",
                    action=lambda self, ctx: self.spawn(),
                    coupling="!dependent", perpetual=True,
                )
            ]

            def spawn(self):
                self.spawned += 1

        with db.transaction():
            obj = db.pnew(SideEffect)
            ptr = obj.ptr
            obj.Indep()
        with db.transaction():
            db.deref(ptr).post_event("Go")
            raise TransactionAbort()
        # "they may cause a system transaction to make permanent changes to
        # the database" — the !dependent action's write is durable even
        # though the detecting transaction rolled back.
        with db.transaction():
            assert db.deref(ptr).spawned == 1


class TestAllTogether:
    def test_ordering_immediate_end_dependent_independent(self, any_engine_db):
        db = any_engine_db
        ptr = make_target(db, "Immediate", "Deferred", "Dependent", "Independent")
        with db.transaction():
            db.deref(ptr).post_event("Go")
        assert AUDIT == ["immediate", "end", "dependent", "independent"]
