"""Crash-matrix exploration tests.

The bounded quick subset runs in tier-1; the exhaustive matrices (every
hit in the trace, both engines) carry the ``crash_matrix`` marker and run
with ``pytest -m crash_matrix``.
"""

import pytest

from repro.faults.harness import (
    crash_and_verify,
    explore,
    record_trace,
    select_hits,
)


def test_trace_is_deterministic(tmp_path):
    a = record_trace(str(tmp_path / "a"))
    b = record_trace(str(tmp_path / "b"))
    assert [(r.index, r.point) for r in a] == [(r.index, r.point) for r in b]


def test_select_hits_covers_every_distinct_point(tmp_path):
    trace = record_trace(str(tmp_path / "t"))
    hits = select_hits(trace, 30)
    assert len(hits) >= 25
    assert {trace[i].point for i in hits} == {r.point for r in trace}


def test_quick_subset_disk(tmp_path):
    """Tier-1's bounded exploration: >=25 crash points, every failpoint
    family, all invariants checked inside crash_and_verify."""
    result = explore(str(tmp_path / "m"), limit=30)
    assert len(result.explored) >= 25
    assert len(result.points_explored) >= 12
    assert {
        "wal",
        "page",
        "pool",
        "checkpoint",
        "txn",
        "phoenix",
    } <= result.families_explored


def test_quick_subset_mm(tmp_path):
    result = explore(str(tmp_path / "m"), engine="mm", limit=18)
    assert len(result.explored) >= 14
    assert {"wal", "snapshot", "checkpoint", "phoenix"} <= result.families_explored


@pytest.mark.parametrize("engine", ["disk", "mm"])
def test_quick_subset_group_commit(tmp_path, engine):
    """Group commit swaps the commit fsync onto the batched path: the
    trace must show the ``wal.group_force``/``wal.group_force.after``
    failpoints (the workload is serial, so every committer is its own
    batch leader) and every crash there must lose or keep the whole
    batch — never a prefix the oracle can't explain."""
    limit = 24 if engine == "disk" else 16
    result = explore(str(tmp_path / "g"), engine=engine, limit=limit, group_commit=True)
    # Commits route to the batch path; checkpoints and buffer-pool
    # pre-write flushes still fsync immediately (wal.force), so both
    # families show up in the same trace.
    assert {"wal.group_force", "wal.group_force.after"} <= result.points_explored


@pytest.mark.crash_matrix
def test_full_matrix_disk(tmp_path):
    """Every single failpoint hit in the trace, exhaustively."""
    trace = record_trace(str(tmp_path / "t"))
    for i in range(len(trace)):
        crash_and_verify(str(tmp_path / f"h{i}"), i, trace[i].point)


@pytest.mark.crash_matrix
def test_full_matrix_mm(tmp_path):
    trace = record_trace(str(tmp_path / "t"), engine="mm")
    for i in range(len(trace)):
        crash_and_verify(str(tmp_path / f"h{i}"), i, trace[i].point, engine="mm")


@pytest.mark.crash_matrix
@pytest.mark.parametrize("engine", ["disk", "mm"])
@pytest.mark.parametrize("trigger_cc", ["2pl", "mvcc"])
def test_full_matrix_group_commit(tmp_path, engine, trigger_cc):
    """The exhaustive matrix with WAL group commit on: every hit in the
    trace, both engines, both TriggerState cc schemes."""
    trace = record_trace(
        str(tmp_path / "t"), engine=engine, trigger_cc=trigger_cc, group_commit=True
    )
    assert {"wal.group_force", "wal.group_force.after"} <= {r.point for r in trace}
    for i in range(len(trace)):
        crash_and_verify(
            str(tmp_path / f"h{i}"),
            i,
            trace[i].point,
            engine=engine,
            trigger_cc=trigger_cc,
            group_commit=True,
        )


@pytest.mark.crash_matrix
@pytest.mark.parametrize("engine", ["disk", "mm"])
def test_full_matrix_mvcc(tmp_path, engine):
    """The exhaustive matrix with trigger_cc="mvcc": the merge path's
    write_merged records are WAL'd like any UPDATE, so every invariant
    (atomicity, index, phoenix exactly-once, fsck) must hold unchanged."""
    trace = record_trace(str(tmp_path / "t"), engine=engine, trigger_cc="mvcc")
    for i in range(len(trace)):
        crash_and_verify(
            str(tmp_path / f"h{i}"),
            i,
            trace[i].point,
            engine=engine,
            trigger_cc="mvcc",
        )
