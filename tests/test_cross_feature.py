"""Cross-feature integration: determinism, indexes×triggers, full stack."""

import pytest

from repro.core.declarations import trigger
from repro.events.compile import compile_expression
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class TestCompilationDeterminism:
    """Persistent FSM state numbers are only valid across sessions because
    recompiling the same declarations yields the identical machine — the
    same bet the paper's recompile-every-program strategy makes."""

    @pytest.mark.parametrize(
        "text",
        [
            "after Buy",
            "relative((after Buy & m), after PayBill)",
            "+(after Buy || BigBuy), after PayBill",
            "^(after Buy, (BigBuy & m))",
        ],
    )
    def test_recompilation_is_bit_identical(self, text):
        decls = ["BigBuy", "after PayBill", "after Buy"]
        a = compile_expression(text, decls)
        b = compile_expression(text, decls)
        assert len(a.fsm) == len(b.fsm)
        assert a.fsm.start == b.fsm.start
        for state_a, state_b in zip(a.fsm.states, b.fsm.states):
            assert state_a.statenum == state_b.statenum
            assert state_a.accept == state_b.accept
            assert state_a.masks == state_b.masks
            assert state_a.transitions == state_b.transitions


class Gauge(Persistent):
    """An indexed field updated *by a trigger action* — the index must see
    writes that originate inside the trigger machinery too."""

    level = field(float, default=0.0)
    severity = field(int, default=0)

    __events__ = ["after report"]
    __masks__ = {"high": lambda self: self.level > 100.0}
    __triggers__ = [
        trigger(
            "Escalate",
            "after report & high",
            action=lambda self, ctx: self.escalate(),
            perpetual=True,
        )
    ]

    def report(self, level):
        self.level = level

    def escalate(self):
        self.severity += 1


class TestIndexesMeetTriggers:
    @pytest.fixture
    def db(self, db_path):
        database = Database.open(db_path, engine="disk")
        yield database
        if not database.closed:
            database.close()

    def test_trigger_action_updates_indexed_field(self, db):
        with db.transaction():
            db.create_index(Gauge, "severity")
            gauge = db.pnew(Gauge)
            ptr = gauge.ptr
            gauge.Escalate()
        with db.transaction():
            db.deref(ptr).report(150.0)  # trigger bumps severity to 1
        with db.transaction():
            assert [h.ptr for h in db.find(Gauge, "severity", 1)] == [ptr]
            assert db.find(Gauge, "severity", 0) == []

    def test_aborted_trigger_update_leaves_index_clean(self, db):
        from repro.errors import TransactionAbort

        with db.transaction():
            db.create_index(Gauge, "severity")
            gauge = db.pnew(Gauge)
            ptr = gauge.ptr
            gauge.Escalate()
        with db.transaction():
            db.deref(ptr).report(150.0)
            raise TransactionAbort()
        with db.transaction():
            assert [h.ptr for h in db.find(Gauge, "severity", 0)] == [ptr]
            assert db.find(Gauge, "severity", 1) == []

    def test_index_triggers_and_crash_together(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            db.create_index(Gauge, "severity")
            gauge = db.pnew(Gauge)
            ptr = gauge.ptr
            gauge.Escalate()
        with db.transaction():
            db.deref(ptr).report(200.0)  # committed escalation
        db.simulate_crash()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            assert [h.ptr for h in db2.find(Gauge, "severity", 1)] == [ptr]
            assert db2.trigger_system.verify_integrity() == []
        db2.close()


@pytest.mark.obs
class TestTracedCrashRecovery:
    """Observability meets the fault harness: a run that crashes mid-commit
    records a coherent trace, the trace survives a JSONL round trip, and
    the recovered database replays cleanly under tracing too."""

    def test_traced_crash_recovery_round_trips(self, db_path, tmp_path):
        from repro import obs
        from repro.errors import InjectedCrashError
        from repro.faults import FaultInjector
        from repro.obs.trace import load_jsonl, render_trace, summarize_trace
        from repro.workloads.credit_card import CreditCardWorkload

        db = Database.open(db_path, engine="disk")
        workload = CreditCardWorkload(seed=7)
        ptrs = workload.setup(db, 3, activate_deny=True)
        db.close()

        # Crash on a later WAL force — mid-workload, after some commits
        # (reopening the database itself forces the log a few times).
        inj = FaultInjector().crash_on("wal.force", after=8)
        db = Database.open(db_path, engine="disk", injector=inj)
        recorder = obs.enable()
        try:
            with pytest.raises(InjectedCrashError):
                workload.run(db, ptrs, 100)
        finally:
            obs.disable()
        db.simulate_crash()

        # The trace captured work up to the crash and round-trips exactly.
        records = recorder.records()
        assert any(r.kind == "post.begin" for r in records)
        assert any(r.kind == "wal.append" for r in records)
        path = str(tmp_path / "crash-trace.jsonl")
        recorder.export(path)
        reloaded = load_jsonl(path)
        assert reloaded == records
        rendered = render_trace(reloaded)
        assert len(rendered) == len(records)
        assert summarize_trace(reloaded)["txn.begin"] >= 1

        # Recovery replays cleanly — traced as well.
        with obs.enabled() as recovery_recorder:
            recovered = Database.open(db_path, engine="disk")
            with recovered.transaction():
                balances = [recovered.deref(p).curr_bal for p in ptrs]
                assert recovered.trigger_system.verify_integrity() == []
        assert all(b >= 0.0 for b in balances)
        recovery_records = recovery_recorder.records()
        assert any(r.kind == "wal.append" for r in recovery_records)
        # The recovery trace round-trips through the same JSONL path.
        rec_path = str(tmp_path / "recovery-trace.jsonl")
        recovery_recorder.export(rec_path)
        assert load_jsonl(rec_path) == recovery_records
        recovered.close()
