"""Database tests: pnew/deref/pdelete, caching, clusters, catalog, pmap."""

import pytest

from repro.errors import (
    DanglingPointerError,
    DatabaseClosedError,
    DatabaseError,
    NoActiveTransactionError,
    ObjectError,
)
from repro.objects.database import Database
from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.pmap import PersistentMap
from repro.objects.schema import field


class Item(Persistent):
    name = field(str, default="")
    qty = field(int, default=0)


class SpecialItem(Item):
    rarity = field(str, default="common")


class TestLifecycle:
    def test_pnew_returns_handle_with_ptr(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            handle = db.pnew(Item, name="widget", qty=3)
            assert handle.ptr.db_name == db.name
            assert handle.name == "widget"

    def test_deref_roundtrip_across_transactions(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item, name="widget", qty=3).ptr
        with db.transaction():
            loaded = db.deref(ptr)
            assert loaded.name == "widget"
            assert loaded.qty == 3

    def test_deref_same_rid_shares_instance_within_txn(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item, name="x").ptr
        with db.transaction():
            a = db.deref(ptr)
            b = db.deref(ptr)
            assert a.obj is b.obj

    def test_field_write_through_handle_persists(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item, name="x", qty=1).ptr
        with db.transaction():
            db.deref(ptr).qty = 42
        with db.transaction():
            assert db.deref(ptr).qty == 42

    def test_write_undeclared_field_through_handle_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            handle = db.pnew(Item)
            with pytest.raises(AttributeError):
                handle.bogus = 1

    def test_method_call_through_handle_marks_dirty(self, any_engine_db):
        db = any_engine_db

        class Counter(Persistent):
            n = field(int, default=0)

            def bump(self):
                self.n += 1

        with db.transaction():
            ptr = db.pnew(Counter).ptr
        with db.transaction():
            db.deref(ptr).bump()
        with db.transaction():
            assert db.deref(ptr).n == 1

    def test_abort_discards_changes(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item, qty=1).ptr
        txn = db.txn_manager.begin()
        db.deref(ptr).qty = 99
        db.txn_manager.abort(txn)
        with db.transaction():
            assert db.deref(ptr).qty == 1

    def test_pdelete_removes_object(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item).ptr
        with db.transaction():
            db.pdelete(ptr)
        with db.transaction():
            with pytest.raises(DanglingPointerError):
                db.deref(ptr)

    def test_deref_null_raises(self, any_engine_db):
        with any_engine_db.transaction():
            with pytest.raises(DanglingPointerError):
                any_engine_db.deref(PersistentPtr("", -1))

    def test_pnew_non_persistent_class_raises(self, any_engine_db):
        with any_engine_db.transaction():
            with pytest.raises(ObjectError):
                any_engine_db.pnew(int)

    def test_operations_need_transaction(self, any_engine_db):
        with pytest.raises(NoActiveTransactionError):
            any_engine_db.pnew(Item)


class TestClusters:
    def test_objects_iterates_cluster(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            names = {db.pnew(Item, name=f"i{i}").ptr.rid: f"i{i}" for i in range(10)}
        with db.transaction():
            found = {h.ptr.rid: h.name for h in db.objects(Item)}
            assert found == names

    def test_objects_includes_derived_by_default(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            db.pnew(Item, name="base")
            db.pnew(SpecialItem, name="special")
        with db.transaction():
            all_names = sorted(h.name for h in db.objects(Item))
            assert all_names == ["base", "special"]
            only_base = [h.name for h in db.objects(Item, include_derived=False)]
            assert only_base == ["base"]

    def test_pdelete_removes_from_cluster(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            keep = db.pnew(Item, name="keep").ptr
            doomed = db.pnew(Item, name="doomed").ptr
        with db.transaction():
            db.pdelete(doomed)
        with db.transaction():
            assert [h.ptr for h in db.objects(Item)] == [keep]

    def test_cluster_persists_across_reopen(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            db.pnew(Item, name="persisted")
        db.close()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            assert [h.name for h in db2.objects(Item)] == ["persisted"]
        db2.close()


class TestOpenClose:
    def test_duplicate_name_raises(self, tmp_path):
        db = Database.open(str(tmp_path / "same"), engine="mm")
        with pytest.raises(DatabaseError):
            Database.open(str(tmp_path / "sub") + "/../same", engine="mm", name="same")
        db.close()

    def test_named_lookup_and_of(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Item).ptr
        assert Database.named(db.name) is db
        assert Database.of(ptr) is db

    def test_closed_database_rejects_work(self, db_path):
        db = Database.open(db_path, engine="mm")
        db.close()
        with pytest.raises(DatabaseClosedError):
            db.txn_manager.begin()

    def test_mm_without_path_needs_name(self):
        with pytest.raises(DatabaseError):
            Database.open(None, engine="mm")

    def test_mm_without_path_with_name(self):
        db = Database.open(None, engine="mm", name="pure-volatile")
        with db.transaction():
            ptr = db.pnew(Item, name="v").ptr
        with db.transaction():
            assert db.deref(ptr).name == "v"
        db.close()


class TestCatalog:
    def test_catalog_set_get(self, any_engine_db):
        db = any_engine_db
        with db.transaction() as txn:
            db.catalog_set(txn, "mykey", 777)
            assert db.catalog_get("mykey") == 777
        with db.transaction():
            assert db.catalog_get("mykey") == 777

    def test_catalog_rolls_back_on_abort(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        db.catalog_set(txn, "temp", 1)
        db.txn_manager.abort(txn)
        with db.transaction():
            assert db.catalog_get("temp") is None


class TestPersistentMap:
    def test_put_get_remove(self, any_engine_db):
        db = any_engine_db
        pmap = PersistentMap(db, "testmap", bucket_count=4)
        with db.transaction() as txn:
            pmap.put(txn, "a", 1)
            pmap.put(txn, "b", [1, 2])
            assert pmap.get(txn, "a") == 1
            assert pmap.get(txn, "b") == [1, 2]
            assert pmap.get(txn, "missing", "dflt") == "dflt"
            assert pmap.remove(txn, "a") is True
            assert pmap.remove(txn, "a") is False

    def test_items_spans_buckets(self, any_engine_db):
        db = any_engine_db
        pmap = PersistentMap(db, "spread", bucket_count=4)
        with db.transaction() as txn:
            expected = {}
            for i in range(40):
                pmap.put(txn, f"key{i}", i)
                expected[f"key{i}"] = i
            assert dict(pmap.items(txn)) == expected
            assert pmap.count(txn) == 40

    def test_persists_across_transactions(self, any_engine_db):
        db = any_engine_db
        pmap = PersistentMap(db, "durablemap")
        with db.transaction() as txn:
            pmap.put(txn, "k", "v")
        with db.transaction() as txn:
            assert pmap.get(txn, "k") == "v"

    def test_update_rolls_back_on_abort(self, any_engine_db):
        db = any_engine_db
        pmap = PersistentMap(db, "rollbackmap")
        with db.transaction() as txn:
            pmap.put(txn, "k", "committed")
        txn = db.txn_manager.begin()
        pmap.put(txn, "k", "uncommitted")
        db.txn_manager.abort(txn)
        with db.transaction() as txn:
            assert pmap.get(txn, "k") == "committed"
