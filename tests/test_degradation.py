"""Graceful degradation: media death → read-only, typed aborts, no hangs.

Tier-1 covers the state machine (DESIGN.md §13) on the serial and
cooperative paths; the 8-threaded-session bounded-wait regression — the
ISSUE's "no unbounded waits under write-stall / media death" acceptance
criterion — runs under ``-m concurrency``.
"""

import threading
import time

import pytest

from repro.errors import (
    LockTimeoutError,
    ReadOnlyStorageError,
    TransactionDeadlineError,
    WaitPoisonedError,
)
from repro.faults import Fault, FaultInjector, FaultKind
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.sessions import CooperativeScheduler


class DegradeGauge(Persistent):
    value = field(int, default=0)


def open_with_injector(db_path, engine, *faults):
    inj = FaultInjector(list(faults))
    return Database.open(db_path, engine=engine, injector=inj), inj


class TestDegradationStateMachine:
    @pytest.mark.parametrize("engine", ["disk", "mm"])
    def test_degrade_fires_listener_metric_and_read_only_flag(
        self, db_path, engine
    ):
        db, inj = open_with_injector(db_path, engine)
        with db.transaction():
            ptr = db.pnew(DegradeGauge).ptr
        assert not db.read_only

        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).value = 1
        assert db.read_only
        assert db.metrics.counter("faults.degraded").value == 1

        # The transition is once-only: further refused writes do not
        # re-announce the degradation.
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).value = 2
        assert db.metrics.counter("faults.degraded").value == 1
        db.close()

    def test_readers_keep_working_while_writers_abort_typed(self, db_path):
        db, inj = open_with_injector(db_path, "disk")
        with db.transaction():
            ptr = db.pnew(DegradeGauge, value=7).ptr
        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).value = 8
        for _ in range(3):  # reads stay up on the degraded store
            with db.transaction():
                assert db.deref(ptr).value == 7
        db.close()

    def test_degraded_writer_releases_locks_and_wakes_waiter(self, db_path):
        """Cooperative: the writer that hits the dead medium aborts typed;
        its abort releases the X lock, so the parked session is *granted*
        (woken normally, not poisoned) and then fails typed itself."""
        db, inj = open_with_injector(db_path, "mm")
        with db.transaction():
            ptr = db.pnew(DegradeGauge).ptr

        scheduler = CooperativeScheduler()
        writer = db.session("writer")
        waiter = db.session("waiter")
        outcomes = {}

        def writing(session, label):
            def run():
                try:
                    with session.transaction():
                        handle = session.deref(ptr)
                        handle.value = handle.value + 1
                        scheduler.yield_now()  # let the other session block
                except ReadOnlyStorageError as exc:
                    outcomes[label] = exc
                else:
                    outcomes[label] = "committed"
                session.close()

            return run

        scheduler.spawn(writing(writer, "writer"), name="writer", session=writer)
        scheduler.spawn(writing(waiter, "waiter"), name="waiter", session=waiter)
        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))
        scheduler.run()  # raises SchedulerHangError / wedges if anyone hangs

        assert isinstance(outcomes["writer"], ReadOnlyStorageError)
        assert isinstance(outcomes["waiter"], ReadOnlyStorageError)
        assert db.storage.lock_manager.stats.poisoned_waits == 0
        assert db.read_only

    def test_crash_poisons_but_degrade_does_not(self, db_path):
        db, inj = open_with_injector(db_path, "disk")
        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.pnew(DegradeGauge)
        assert not db.storage.lock_manager.poisoned  # degrade: orderly aborts
        db.simulate_crash()
        assert db.storage.lock_manager.poisoned  # crash: wake-all

    def test_reopen_after_degrade_is_writable(self, db_path):
        db, inj = open_with_injector(db_path, "disk")
        with db.transaction():
            ptr = db.pnew(DegradeGauge, value=3).ptr
        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).value = 4
        db.close()

        db2 = Database.open(db_path, engine="disk")  # healthy medium again
        assert not db2.read_only
        with db2.transaction():
            assert db2.deref(ptr).value == 3
            db2.deref(ptr).value = 4
        db2.close()


@pytest.mark.concurrency
class TestBoundedWaitsUnderMediaDeath:
    """The acceptance criterion: 8 threaded sessions, media death plus a
    write stall mid-run — every session returns (commit or typed error)
    within its deadline; nobody hangs."""

    def test_eight_sessions_all_return_typed_within_deadline(self, db_path):
        inj = FaultInjector(
            [
                # A slow disk first (stalls on the WAL force path), then
                # the medium dies outright.
                Fault("wal.force", FaultKind.STALL, delay=0.02, count=5),
                Fault("wal.append", FaultKind.MEDIA_ERROR, after=60),
            ]
        )
        db = Database.open(db_path, engine="disk", injector=inj)
        with db.transaction():
            ptrs = [db.pnew(DegradeGauge).ptr for _ in range(2)]

        n_sessions, txns_each, deadline = 8, 6, 5.0
        outcomes: dict[str, list] = {}
        outcomes_lock = threading.Lock()

        def worker(index):
            session = db.session(f"w{index}")
            mine: list = []
            try:
                for k in range(txns_each):

                    def body(txn, k=k):
                        handle = session.deref(ptrs[(index + k) % len(ptrs)])
                        handle.value = handle.value + 1

                    t0 = time.monotonic()
                    try:
                        session.run(body, retries=200, deadline=deadline)
                        mine.append("committed")
                    except (
                        ReadOnlyStorageError,
                        TransactionDeadlineError,
                        LockTimeoutError,
                        WaitPoisonedError,
                    ) as exc:
                        mine.append(type(exc).__name__)
                    # The bound: a failed attempt consumed at most the
                    # deadline plus scheduling slack, never an unbounded wait.
                    assert time.monotonic() - t0 < deadline + 10.0
            finally:
                with outcomes_lock:
                    outcomes[f"w{index}"] = mine
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"w{i}", daemon=True)
            for i in range(n_sessions)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), f"{thread.name} never returned"
        elapsed = time.monotonic() - start

        assert len(outcomes) == n_sessions
        flat = [o for results in outcomes.values() for o in results]
        assert len(flat) == n_sessions * txns_each
        # The medium died mid-run: someone committed before, someone was
        # refused after, and every refusal was *typed*.
        assert "committed" in flat
        assert "ReadOnlyStorageError" in flat
        assert db.read_only
        assert db.metrics.counter("faults.degraded").value == 1
        # Survival accounting: the committed increments are all durable…
        with db.transaction():
            total = sum(db.deref(p).value for p in ptrs)
        assert total == flat.count("committed")
        # …and the whole run stayed bounded (no 30s wait_timeout convoy).
        assert elapsed < 110.0

        db.close()
        # Recovery time: a reopen on a healthy medium is writable again.
        t0 = time.monotonic()
        db2 = Database.open(db_path, engine="disk")
        recovery = time.monotonic() - t0
        assert recovery < 30.0
        with db2.transaction():
            assert sum(db2.deref(p).value for p in ptrs) == total
            db2.deref(ptrs[0]).value = total + 1  # writable
        db2.close()
