"""Disk-engine stress tests: record spanning, forwarding churn, full pages.

These exist because fuzzing found two real bugs here: a page-compaction
rollback that corrupted neighbours, and an infinite loop placing records
larger than a page.  The regression forms stay in the suite.
"""

import random

import pytest

from repro.storage.disk import DiskStorageManager, _MAX_CHUNK


@pytest.fixture
def sm(tmp_path):
    manager = DiskStorageManager(str(tmp_path / "stress"))
    manager.begin_transaction(1)
    yield manager
    try:
        manager.commit_transaction(1)
    except Exception:
        pass
    manager.close()


class TestSpanning:
    @pytest.mark.parametrize("size", [0, 1, _MAX_CHUNK, _MAX_CHUNK + 1, 9000, 40000])
    def test_record_of_any_size_roundtrips(self, sm, size):
        data = bytes(range(256)) * (size // 256) + bytes(range(size % 256))
        rid = sm.insert(1, data)
        assert sm.read(1, rid) == data

    def test_grow_shrink_cycle_across_span_boundary(self, sm):
        rid = sm.insert(1, b"small")
        for size in [10, 9000, 100, 20000, 0, 5000, 3]:
            data = b"x" * size
            sm.write(1, rid, data)
            assert sm.read(1, rid) == data

    def test_spanned_record_survives_reopen(self, tmp_path):
        path = str(tmp_path / "span")
        manager = DiskStorageManager(path)
        manager.begin_transaction(1)
        big = bytes(range(256)) * 60  # ~15 KB
        rid = manager.insert(1, big)
        manager.commit_transaction(1)
        manager.close()
        reopened = DiskStorageManager(path)
        reopened.begin_transaction(1)
        assert reopened.read(1, rid) == big
        reopened.commit_transaction(1)
        reopened.close()

    def test_delete_spanned_record_reclaims_chain(self, sm):
        rid = sm.insert(1, b"z" * 20000)
        sm.delete(1, rid)
        assert not sm.exists(1, rid)
        # Scan sees no leftover segments.
        assert dict(sm.scan(1)) == {}

    def test_abort_of_spanned_write_restores(self, tmp_path):
        manager = DiskStorageManager(str(tmp_path / "abt"))
        manager.begin_transaction(1)
        rid = manager.insert(1, b"original")
        manager.commit_transaction(1)
        manager.begin_transaction(2)
        manager.write(2, rid, b"y" * 15000)
        manager.abort_transaction(2)
        manager.begin_transaction(3)
        assert manager.read(3, rid) == b"original"
        manager.commit_transaction(3)
        manager.close()


class TestRegressionFuzz:
    def test_mixed_size_churn_matches_model(self, sm):
        """The exact workload shape that exposed the compaction bug."""
        rng = random.Random(1996)
        model = {}
        for step in range(800):
            if not model or rng.random() < 0.25:
                rid = sm.insert(1, b"")
                model[rid] = b""
            rid = rng.choice(list(model))
            if rng.random() < 0.1 and len(model) > 1:
                sm.delete(1, rid)
                del model[rid]
                continue
            size = rng.choice([0, 1, 9, 100, 500, 1200, 3000, 4500, 9000])
            data = bytes([rng.randrange(256)]) * size
            sm.write(1, rid, data)
            model[rid] = data
        assert dict(sm.scan(1)) == model

    def test_page_packed_with_tiny_records_then_grown(self, sm):
        """Many minimum-size records, then grow them all — every inline
        slot must convert to a forward pointer without corruption."""
        rids = [sm.insert(1, bytes([i % 250])) for i in range(300)]
        for i, rid in enumerate(rids):
            sm.write(1, rid, bytes([i % 250]) * 2000)
        for i, rid in enumerate(rids):
            assert sm.read(1, rid) == bytes([i % 250]) * 2000
