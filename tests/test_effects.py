"""Effect inference (``repro.analysis.effects``) and its consumers.

Covers the inference itself (AST walking, string actions, lambdas, tag
protocol, widening), the DFA helpers the termination/confluence passes
build on, the repo-wide sweep (inference must never crash on any trigger
shipped in workloads/ or examples/), ``Database.check_triggers``, the
typed ``trigger_info`` errors, and the runtime firing-order guard.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.analysis import infer_callable_effects, infer_trigger_effects
from repro.analysis.confluence import non_confluent_pairs
from repro.analysis.effects import EffectSet
from repro.core.declarations import trigger
from repro.errors import (
    SchemaError,
    TriggerDeclarationError,
    UnknownTriggerError,
)
from repro.events.compile import compile_expression
from repro.events.dfa import (
    acceptance_avoiding,
    acceptance_through,
    firing_symbols,
)
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from tests import analysis_fixtures as fx

pytestmark = pytest.mark.analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# inference over the paper's credit-card triggers
# ---------------------------------------------------------------------------


class TestCreditCardInference:
    @pytest.fixture(scope="class")
    def metatype(self):
        from repro.workloads.credit_card import CredCard

        return CredCard.__metatype__

    def test_deny_credit(self, metatype):
        info = metatype.trigger_by_name("DenyCredit")
        eff = infer_trigger_effects(info, metatype)
        assert eff.analyzed and not eff.unknown
        assert "black_mark" in eff.calls
        assert eff.aborts  # ctx.tabort
        # inlined black_mark body: black_marks = black_marks + [problem]
        assert "black_marks" in eff.writes
        assert "black_marks" in eff.reads

    def test_string_action_auto_raise_limit(self, metatype):
        info = metatype.trigger_by_name("AutoRaiseLimit")
        eff = infer_trigger_effects(info, metatype)
        assert eff.calls == {"raise_limit"}
        assert "cred_lim" in eff.writes
        assert "cred_lim" in eff.reads  # += reads before writing

    def test_string_action_auto_pay_down(self, metatype):
        info = metatype.trigger_by_name("AutoPayDown")
        eff = infer_trigger_effects(info, metatype)
        assert eff.calls == {"pay_bill"}
        assert "curr_bal" in eff.writes
        assert not eff.aborts


# ---------------------------------------------------------------------------
# inference mechanics on synthetic actions
# ---------------------------------------------------------------------------


class _Widget(Persistent):
    hits = field(int, default=0)
    notes = field(list, default=[])

    __events__ = ["after poke", "WidgetJolt"]
    __triggers__ = [
        trigger(
            "Note",
            "after poke",
            action=lambda self, ctx: self.post_event("WidgetJolt"),
            posts=("WidgetJolt",),
            perpetual=True,
        ),
    ]

    def poke(self) -> None:
        self.hits += 1


class TestInferenceMechanics:
    def test_lambda_action_from_declaration_line(self):
        metatype = _Widget.__metatype__
        eff = infer_trigger_effects(metatype.trigger_by_name("Note"), metatype)
        assert eff.analyzed
        assert eff.posts == {"WidgetJolt"}

    def test_mutator_method_counts_as_write(self):
        eff = infer_callable_effects(
            lambda self, ctx: self.notes.append("x"), _Widget
        )
        assert "notes" in eff.writes

    def test_bare_name_call_widens(self):
        eff = infer_callable_effects(lambda self, ctx: mystery(self))  # noqa: F821
        assert eff.unknown
        assert any("mystery" in reason for reason in eff.unknown_reasons)

    def test_non_literal_post_widens(self):
        def action(self, ctx):
            self.post_event(self.notes[0])

        eff = infer_callable_effects(action)
        assert eff.unknown
        assert eff.posts == frozenset()

    def test_evaled_lambda_is_unanalyzed(self):
        opaque = eval("lambda self, ctx: None")
        eff = infer_callable_effects(opaque)
        assert not eff.analyzed
        assert eff.unknown

    def test_raise_means_abort_without_widening(self):
        def action(self, ctx):
            raise ValueError(f"bad count {self.hits}")

        eff = infer_callable_effects(action)
        assert eff.aborts
        assert not eff.unknown
        assert "hits" in eff.reads

    def test_conflicts_is_symmetric_rw_overlap(self):
        a = EffectSet(reads=frozenset({"x"}), writes=frozenset({"y"}))
        b = EffectSet(reads=frozenset({"y"}), writes=frozenset({"z"}))
        assert a.conflicts(b) == {"y"}
        assert b.conflicts(a) == {"y"}
        assert a.conflicts(EffectSet(reads=frozenset({"x"}))) == frozenset()


# ---------------------------------------------------------------------------
# repo-wide sweep: inference must hold up on every shipped trigger
# ---------------------------------------------------------------------------


def _example_classes():
    """Persistent classes defined by workloads and examples/ scripts."""
    import repro.workloads.credit_card as credit_card
    import repro.workloads.trading as trading

    modules = [credit_card, trading]
    for path in sorted((REPO_ROOT / "examples").glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"effects_sweep_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        modules.append(module)
    classes = []
    for module in modules:
        for value in vars(module).values():
            if (
                isinstance(value, type)
                and issubclass(value, Persistent)
                and value is not Persistent
                and value.__metatype__.all_trigger_infos
            ):
                classes.append(value)
    return classes


class TestRepoWideSweep:
    def test_inference_covers_every_shipped_trigger(self):
        covered = 0
        for cls in _example_classes():
            metatype = cls.__metatype__
            for info in metatype.all_trigger_infos:
                eff = infer_trigger_effects(info, metatype)  # must not raise
                assert eff.analyzed, (metatype.name, info.name)
                # declared posts= is a subset of what inference sees: the
                # metadata pass (ODE203) keeps the declarations honest.
                assert set(info.posts) <= eff.posts, (metatype.name, info.name)
                covered += 1
        assert covered >= 5  # the sweep actually found the shipped triggers


# ---------------------------------------------------------------------------
# DFA helpers used by the termination/confluence passes
# ---------------------------------------------------------------------------


class TestDfaHelpers:
    def test_acceptance_avoiding_mask_guards(self):
        guarded = compile_expression("A & m", ["A", "B"]).fsm
        assert not acceptance_avoiding(guarded, {"true:m"})
        plain = compile_expression("A", ["A", "B"]).fsm
        assert acceptance_avoiding(plain, {"true:m"})
        escape = compile_expression("(A & m) || B", ["A", "B"]).fsm
        assert acceptance_avoiding(escape, {"true:m"})

    def test_acceptance_through_anchored(self):
        fsm = compile_expression("A, B", ["A", "B", "C"], anchored=True).fsm
        assert acceptance_through(fsm, "A")
        assert acceptance_through(fsm, "B")
        assert not acceptance_through(fsm, "C")

    def test_acceptance_through_ignores_foreign_symbols(self):
        fsm = compile_expression("A, B", ["A", "B", "C"]).fsm
        assert acceptance_through(fsm, "B")
        assert not acceptance_through(fsm, "D")  # not in the alphabet

    def test_firing_symbols_sequence_fires_on_last(self):
        fsm = compile_expression("A, B", ["A", "B", "C"]).fsm
        assert firing_symbols(fsm) == {"B"}

    def test_firing_symbols_union_fires_on_either(self):
        fsm = compile_expression("A || B", ["A", "B", "C"]).fsm
        assert firing_symbols(fsm) == {"A", "B"}

    def test_firing_symbols_attributes_masked_accept_to_consumer(self):
        fsm = compile_expression(
            "relative((A & m), B)", ["A", "B", "C"]
        ).fsm
        assert firing_symbols(fsm) == {"B"}


# ---------------------------------------------------------------------------
# Database.check_triggers
# ---------------------------------------------------------------------------


class TestCheckTriggers:
    def test_reports_cascade_findings_for_targets(self, disk_db):
        report = disk_db.check_triggers(targets=[fx.BadImmediateCascade])
        assert "ODE030" in report.codes()

    def test_strict_raises_on_unproven_termination(self, disk_db):
        with pytest.raises(TriggerDeclarationError) as err:
            disk_db.check_triggers(
                targets=[fx.BadImmediateCascade], strict=True
            )
        assert "terminate" in str(err.value)

    def test_strict_passes_on_clean_targets(self, disk_db):
        report = disk_db.check_triggers(
            targets=[fx.CleanDeclaredPoster], strict=True
        )
        assert report.codes() == set()


# ---------------------------------------------------------------------------
# typed trigger_info errors
# ---------------------------------------------------------------------------


class TestUnknownTriggerError:
    def test_negative_index_raises_instead_of_wrapping(self):
        metatype = _Widget.__metatype__
        with pytest.raises(UnknownTriggerError) as err:
            metatype.trigger_info(-1)
        assert "_Widget" in str(err.value)

    def test_out_of_range_names_the_class_and_count(self):
        metatype = _Widget.__metatype__
        with pytest.raises(UnknownTriggerError) as err:
            metatype.trigger_info(99)
        assert "99" in str(err.value)

    def test_unknown_name(self):
        with pytest.raises(UnknownTriggerError):
            _Widget.__metatype__.trigger_by_name("NoSuchTrigger")

    def test_is_a_schema_error_for_legacy_callers(self):
        assert issubclass(UnknownTriggerError, SchemaError)


# ---------------------------------------------------------------------------
# runtime firing-order guard
# ---------------------------------------------------------------------------


def _racy_add(self, ctx) -> None:
    self.total = self.total + 5


def _racy_clamp(self, ctx) -> None:
    self.total = min(self.total, 3)


class _RacyCounter(Persistent):
    total = field(int, default=0)

    __events__ = ["after bump"]
    __triggers__ = [
        trigger(
            "AddFive",
            "after bump",
            action=_racy_add,
            perpetual=True,
            suppress=("ODE202",),
        ),
        trigger(
            "ClampLow",
            "after bump",
            action=_racy_clamp,
            perpetual=True,
        ),
    ]

    def bump(self) -> None:
        pass


class TestFiringOrderGuard:
    def test_static_verdict_names_the_pair(self):
        pairs = non_confluent_pairs(_RacyCounter.__metatype__)
        assert frozenset(("AddFive", "ClampLow")) in pairs

    def test_nonconfluent_ready_set_is_counted_and_deterministic(self, disk_db):
        db = disk_db
        with db.transaction():
            counter = db.pnew(_RacyCounter)
            ptr = counter.ptr
            counter.AddFive()
            counter.ClampLow()
            counter.bump()
        stats = db.trigger_system.stats
        assert stats.nonconfluent_firing_sets >= 1
        with db.transaction():
            # canonical order is activation order: AddFive then ClampLow
            assert db.deref(ptr).total == 3

    def test_confluent_class_never_counts(self, disk_db):
        db = disk_db
        with db.transaction():
            widget = db.pnew(_Widget)
            widget.Note()
            widget.poke()
        assert db.trigger_system.stats.nonconfluent_firing_sets == 0
