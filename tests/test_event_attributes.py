"""Event-attribute tests (Section 8: masks may inspect the member
function's parameters)."""

import pytest

from repro.core.declarations import trigger
from repro.core.monitored import LocalTriggerSystem, Monitored
from repro.errors import TriggerDeclarationError
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Teller(Persistent):
    total = field(float, default=0.0)
    alerts = field(list, default=[])

    __events__ = ["after deposit", "after transfer"]
    __masks__ = {
        # (self, params, event): the Section 8 extension — the mask reads
        # the amount argument of the posting member-function invocation.
        "big_amount": lambda self, params, event: (
            event.args and event.args[0] > params.get("threshold", 1e9)
        ),
        # Keyword arguments are visible too.
        "flagged_dest": lambda self, params, event: (
            event.kwargs.get("dest") == "suspicious"
        ),
    }
    __triggers__ = [
        trigger(
            "BigDeposit",
            "after deposit & big_amount",
            action=lambda self, ctx: self.alert("big"),
            params=("threshold",),
            perpetual=True,
        ),
        trigger(
            "BadTransfer",
            "after transfer & flagged_dest",
            action=lambda self, ctx: self.alert("bad-dest"),
            perpetual=True,
        ),
    ]

    def deposit(self, amount):
        self.total += amount

    def transfer(self, amount, dest=""):
        self.total -= amount

    def alert(self, tag):
        self.alerts = self.alerts + [tag]


class TestEventAttributes:
    def test_mask_sees_positional_argument(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            teller = db.pnew(Teller)
            ptr = teller.ptr
            teller.BigDeposit(1000.0)
            teller.deposit(500.0)   # below threshold
            teller.deposit(5000.0)  # above
        with db.transaction():
            assert db.deref(ptr).alerts == ["big"]

    def test_mask_sees_keyword_argument(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            teller = db.pnew(Teller)
            ptr = teller.ptr
            teller.BadTransfer()
            teller.transfer(10.0, dest="normal")
            teller.transfer(10.0, dest="suspicious")
        with db.transaction():
            assert db.deref(ptr).alerts == ["bad-dest"]

    def test_event_method_name_available(self, any_engine_db):
        db = any_engine_db
        seen = []

        class Probe(Persistent):
            __events__ = ["after poke"]
            __masks__ = {
                "record": lambda self, params, event: seen.append(event.method)
                or True,
            }
            __triggers__ = [
                trigger(
                    "T", "after poke & record",
                    action=lambda s, c: None, perpetual=True,
                )
            ]

            def poke(self):
                pass

        with db.transaction():
            probe = db.pnew(Probe)
            probe.T()
            probe.poke()
        assert seen == ["poke"]

    def test_activation_time_masks_get_null_occurrence(self, any_engine_db):
        db = any_engine_db
        occurrences = []

        class Starter(Persistent):
            __events__ = ["after go"]
            __masks__ = {
                "note": lambda self, params, event: occurrences.append(
                    event.eventnum
                )
                or True,
            }
            __triggers__ = [
                # (+go) & note has a start obligation after each go run —
                # but also evaluates at activation via the start state?  No:
                # non-nullable, so first evaluation happens at first event.
                trigger(
                    "T", "(+(after go)) & note",
                    action=lambda s, c: None, perpetual=True,
                )
            ]

            def go(self):
                pass

        with db.transaction():
            starter = db.pnew(Starter)
            starter.T()
            starter.go()
        assert len(occurrences) == 1
        assert occurrences[0] != 0  # a real posting, not the null occurrence

    def test_local_rules_see_event_attributes(self):
        hits = []

        class Meter(Monitored):
            __events__ = ["after read"]
            __masks__ = {
                "spike": lambda self, params, event: event.args[0] > 100,
            }
            __triggers__ = [
                trigger(
                    "OnSpike", "after read & spike",
                    action=lambda self, ctx: hits.append(1), perpetual=True,
                )
            ]

            def read(self, value):
                pass

        system = LocalTriggerSystem()
        meter = Meter()
        handle = system.monitor(meter)
        handle.OnSpike()
        handle.read(50)
        handle.read(150)
        assert hits == [1]

    def test_zero_arg_mask_rejected(self):
        with pytest.raises(TriggerDeclarationError):

            class Bad(Persistent):
                __events__ = ["after f"]
                __masks__ = {"broken": lambda: True}
                __triggers__ = [
                    trigger("T", "after f & broken", action=lambda s, c: None)
                ]

                def f(self):
                    pass

    def test_legacy_one_and_two_arg_masks_still_work(self, any_engine_db):
        db = any_engine_db

        class Mixed(Persistent):
            v = field(int, default=0)
            n = field(int, default=0)
            __events__ = ["after set"]
            __masks__ = {
                "one": lambda self: self.v > 0,
                "two": lambda self, params: self.v > params.get("floor", 0),
            }
            __triggers__ = [
                trigger("A", "after set & one", action="inc", perpetual=True),
                trigger(
                    "B", "after set & two",
                    action=lambda self, ctx: self.inc(),
                    params=("floor",), perpetual=True,
                ),
            ]

            def set(self, v):
                self.v = v

            def inc(self):
                self.n += 1

        with db.transaction():
            mixed = db.pnew(Mixed)
            ptr = mixed.ptr
            mixed.A()
            mixed.B(10)
            mixed.set(5)   # one: fires; two: 5 <= 10 no
            mixed.set(20)  # both fire
        with db.transaction():
            assert db.deref(ptr).n == 3
