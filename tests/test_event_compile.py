"""Compilation-pipeline tests: AST desugaring, NFA/DFA, validation, Figure 1."""

import pytest

from repro.errors import EventError, UnknownEventError, UnknownMaskError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    ExtAnyEvent,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)
from repro.events.compile import compile_expression
from repro.events.dfa import determinize
from repro.events.fsm import DEAD, EventDecl
from repro.events.nfa import build_nfa
from repro.events.parser import parse

DECLS = ["BigBuy", "after PayBill", "after Buy"]


class TestDesugar:
    def test_relative_becomes_seq_with_ext_any(self):
        expr = Relative(BasicEvent("user", "A"), BasicEvent("user", "B"))
        desugared = expr.desugar()
        assert desugared == Seq(
            (BasicEvent("user", "A"), Star(ExtAnyEvent()), BasicEvent("user", "B"))
        )

    def test_plus_becomes_seq_star(self):
        expr = Plus(BasicEvent("user", "A"))
        assert expr.desugar() == Seq(
            (BasicEvent("user", "A"), Star(BasicEvent("user", "A")))
        )

    def test_masked_becomes_pseudo_obligation(self):
        expr = Masked(BasicEvent("user", "A"), "m")
        desugared = expr.desugar()
        assert desugared == Seq(
            (BasicEvent("user", "A"), BasicEvent("pseudo", "true:m"))
        )

    def test_nullable_detection(self):
        a = BasicEvent("user", "A")
        assert Star(a).nullable()
        assert not a.nullable()
        assert Seq((Star(a), Star(a))).nullable()
        assert not Seq((a, Star(a))).nullable()
        assert Union((a, Star(a))).nullable()
        assert Plus(Star(a)).nullable()
        assert not Plus(a).nullable()


class TestEventDecl:
    def test_parse_member_event(self):
        decl = EventDecl.parse("after Buy")
        assert decl.kind == "after"
        assert decl.symbol == "after Buy"
        assert decl.is_method_event

    def test_parse_user_event(self):
        decl = EventDecl.parse("BigBuy")
        assert decl.kind == "user"
        assert decl.symbol == "BigBuy"

    def test_transaction_event(self):
        decl = EventDecl.parse("before tcomplete")
        assert decl.is_transaction_event
        assert not decl.is_method_event

    def test_after_tcomplete_rejected(self):
        with pytest.raises(EventError):
            EventDecl("after", "tcomplete")

    def test_garbage_rejected(self):
        with pytest.raises(EventError):
            EventDecl.parse("after Buy extra")


class TestValidation:
    def test_undeclared_event_rejected(self):
        with pytest.raises(UnknownEventError, match="after Steal"):
            compile_expression("after Steal", DECLS)

    def test_wrong_kind_rejected(self):
        # Declared as `after Buy`, used as user event `Buy`.
        with pytest.raises(UnknownEventError):
            compile_expression("Buy", DECLS)

    def test_unknown_mask_rejected_when_known_given(self):
        with pytest.raises(UnknownMaskError, match="mystery"):
            compile_expression("after Buy & mystery", DECLS, known_masks=["real"])

    def test_unchecked_masks_allowed_without_known(self):
        cm = compile_expression("after Buy & anything", DECLS)
        assert "anything" in cm.masks

    def test_nullable_rejected(self):
        with pytest.raises(EventError, match="empty"):
            compile_expression("*BigBuy", DECLS)


class TestDfaStructure:
    def test_unanchored_machine_is_complete(self):
        cm = compile_expression("after Buy, after PayBill", DECLS)
        for state in cm.fsm.states:
            assert set(state.transitions) == set(cm.fsm.alphabet)

    def test_anchored_machine_may_be_partial(self):
        cm = compile_expression("^(after Buy, after PayBill)", DECLS)
        assert cm.anchored
        start = cm.fsm.states[cm.fsm.start]
        assert "BigBuy" not in start.transitions  # dead, not looping

    def test_anchored_dead_on_wrong_event(self):
        cm = compile_expression("^(after Buy, after PayBill)", DECLS)
        state, consumed = cm.fsm.move(cm.fsm.start, "BigBuy")
        assert state == DEAD
        assert consumed

    def test_out_of_alphabet_symbol_ignored(self):
        cm = compile_expression("after Buy", DECLS)
        state, consumed = cm.fsm.move(cm.fsm.start, "after SomethingElse")
        assert state == cm.fsm.start
        assert not consumed

    def test_mask_state_annotated(self):
        cm = compile_expression("after Buy & m", DECLS)
        mask_states = cm.fsm.mask_states()
        assert len(mask_states) == 1
        assert cm.fsm.states[mask_states[0]].masks == ("m",)

    def test_obligations_only_from_masked_desugar(self):
        expr, _ = parse("after Buy & m")
        desugared = Seq((Star(ExtAnyEvent()), expr.desugar()))
        alphabet = frozenset(
            {"BigBuy", "after PayBill", "after Buy", "true:m", "false:m"}
        )
        nfa = build_nfa(desugared, alphabet)
        assert len(nfa.obligations) == 1


class TestFigure1:
    """Structural reproduction of paper Figure 1 (AutoRaiseLimit's FSM)."""

    @pytest.fixture
    def machine(self):
        return compile_expression(
            "relative((after Buy & MoreCred()), after PayBill)",
            DECLS,
            known_masks=["MoreCred"],
        ).fsm

    def test_four_states(self, machine):
        assert len(machine) == 4

    def test_single_mask_state_is_state_after_buy(self, machine):
        assert machine.mask_states() == [1]
        assert machine.states[1].masks == ("MoreCred",)

    def test_single_accept_state(self, machine):
        assert len(machine.accept_states()) == 1

    def test_state0_loops_on_bigbuy_and_paybill(self, machine):
        start = machine.states[machine.start]
        assert start.transitions["BigBuy"] == machine.start
        assert start.transitions["after PayBill"] == machine.start
        assert start.transitions["after Buy"] == 1

    def test_false_edge_returns_to_start(self, machine):
        assert machine.states[1].transitions["false:MoreCred"] == machine.start

    def test_true_edge_advances(self, machine):
        armed = machine.states[1].transitions["true:MoreCred"]
        assert armed not in (machine.start, 1)
        # Armed state loops on BigBuy/Buy and accepts on PayBill.
        armed_state = machine.states[armed]
        assert armed_state.transitions["BigBuy"] == armed
        assert armed_state.transitions["after Buy"] == armed
        accept = armed_state.transitions["after PayBill"]
        assert machine.states[accept].accept

    def test_behaviour_matches_paper_narrative(self, machine):
        more_cred = {"value": False}
        evaluate = lambda name: more_cred["value"]
        state, _ = machine.quiesce(machine.start, evaluate)
        # Buy without MoreCred: back to start.
        result = machine.advance(state, "after Buy", evaluate)
        assert result.state == machine.start and not result.accepted
        # Buy with MoreCred: armed.
        more_cred["value"] = True
        result = machine.advance(result.state, "after Buy", evaluate)
        armed = result.state
        assert not result.accepted
        # Any number of other events keep it armed.
        for symbol in ("BigBuy", "after Buy", "BigBuy"):
            result = machine.advance(result.state, symbol, evaluate)
            assert not result.accepted
        # PayBill fires.
        result = machine.advance(result.state, "after PayBill", evaluate)
        assert result.accepted


class TestDescribe:
    def test_describe_mentions_mask_and_accept(self):
        cm = compile_expression("after Buy & m", DECLS)
        text = cm.describe()
        assert "*[m]" in text
        assert "(accept)" in text
        assert "after Buy" in text
