"""Event-language parser tests."""

import pytest

from repro.errors import EventParseError
from repro.events.ast import (
    AnyEvent,
    BasicEvent,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)
from repro.events.parser import parse


def expr_of(text):
    expr, _ = parse(text)
    return expr


class TestBasics:
    def test_after_event(self):
        assert expr_of("after Buy") == BasicEvent("after", "Buy")

    def test_before_event(self):
        assert expr_of("before PayBill") == BasicEvent("before", "PayBill")

    def test_user_event(self):
        assert expr_of("BigBuy") == BasicEvent("user", "BigBuy")

    def test_any(self):
        assert expr_of("any") == AnyEvent()

    def test_transaction_event(self):
        assert expr_of("before tcomplete") == BasicEvent("before", "tcomplete")


class TestOperators:
    def test_sequence(self):
        expr = expr_of("after Buy, after PayBill")
        assert isinstance(expr, Seq)
        assert len(expr.parts) == 2

    def test_sequence_associates_flat(self):
        expr = expr_of("A, B, C")
        assert isinstance(expr, Seq)
        assert len(expr.parts) == 3

    def test_union(self):
        expr = expr_of("BigBuy || after Buy")
        assert isinstance(expr, Union)

    def test_union_binds_tighter_than_sequence(self):
        expr = expr_of("A, B || C")
        assert isinstance(expr, Seq)
        assert isinstance(expr.parts[1], Union)

    def test_star_prefix(self):
        expr = expr_of("*BigBuy")
        assert expr == Star(BasicEvent("user", "BigBuy"))

    def test_plus_prefix(self):
        expr = expr_of("+BigBuy")
        assert expr == Plus(BasicEvent("user", "BigBuy"))

    def test_nested_star(self):
        assert expr_of("**A") == Star(Star(BasicEvent("user", "A")))

    def test_parentheses_group(self):
        expr = expr_of("(A, B) || C")
        assert isinstance(expr, Union)
        assert isinstance(expr.parts[0], Seq)

    def test_mask(self):
        expr = expr_of("after Buy & over_limit")
        assert expr == Masked(BasicEvent("after", "Buy"), "over_limit")

    def test_mask_with_call_parens(self):
        expr = expr_of("after Buy & MoreCred()")
        assert expr == Masked(BasicEvent("after", "Buy"), "MoreCred")

    def test_mask_parenthesized_name(self):
        expr = expr_of("after Buy & (over_limit)")
        assert expr == Masked(BasicEvent("after", "Buy"), "over_limit")

    def test_chained_masks(self):
        expr = expr_of("A & m1 & m2")
        assert expr == Masked(Masked(BasicEvent("user", "A"), "m1"), "m2")

    def test_mask_applies_to_group(self):
        expr = expr_of("(A, B) & m")
        assert isinstance(expr, Masked)
        assert isinstance(expr.child, Seq)

    def test_relative(self):
        expr = expr_of("relative(A, B)")
        assert expr == Relative(BasicEvent("user", "A"), BasicEvent("user", "B"))

    def test_relative_with_complex_args(self):
        expr = expr_of("relative((after Buy & MoreCred()), after PayBill)")
        assert isinstance(expr, Relative)
        assert isinstance(expr.first, Masked)

    def test_anchor(self):
        expr, anchored = parse("^(A, B)")
        assert anchored
        assert isinstance(expr, Seq)

    def test_no_anchor_by_default(self):
        _, anchored = parse("A")
        assert not anchored


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "after",
            "A,",
            "A ||",
            "(A",
            "A)",
            "relative(A)",
            "relative(A, B, C)",
            "A & ",
            "& m",
            "A ^ B",
            "after after",
            "A @ B",
            "*",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(EventParseError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(EventParseError) as excinfo:
            parse("A, , B")
        assert "^" in str(excinfo.value)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "after Buy",
            "(after Buy, after PayBill)",
            "(BigBuy || after Buy)",
            "(*BigBuy)",
            "(+BigBuy)",
            "(after Buy & m)",
            "relative((after Buy & m), after PayBill)",
            "((A, B) || (*C))",
        ],
    )
    def test_parse_unparse_parse_fixpoint(self, text):
        expr1, _ = parse(text)
        expr2, _ = parse(expr1.unparse())
        assert expr1 == expr2
