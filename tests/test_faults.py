"""Fault-injector unit tests and engine behavior under injected faults."""

import pytest

from repro.errors import (
    InjectedCrashError,
    ReadOnlyStorageError,
    TransientIOError,
    UnrecoverableMediaError,
)
from repro.faults import (
    Fault,
    FaultInjector,
    FaultKind,
    NULL_INJECTOR,
    RetryPolicy,
    with_retry,
)
from repro.objects.database import Database
from repro.workloads.credit_card import CredCard


class TestInjectorUnit:
    def test_recording_captures_ordered_trace(self):
        inj = FaultInjector(recording=True)
        inj.fire("a.one")
        inj.fire_write("b.two", b"payload")
        inj.fire("a.one")
        assert [(r.index, r.point, r.writes) for r in inj.trace] == [
            (0, "a.one", False),
            (1, "b.two", True),
            (2, "a.one", False),
        ]

    def test_crash_at_hits_the_exact_global_index(self):
        inj = FaultInjector(crash_at=2)
        inj.fire("a")
        inj.fire("b")
        with pytest.raises(InjectedCrashError):
            inj.fire("c")

    def test_crashed_injector_is_poisoned(self):
        """A dead process cannot reach the disk again."""
        inj = FaultInjector(crash_at=0)
        with pytest.raises(InjectedCrashError):
            inj.fire("x")
        with pytest.raises(InjectedCrashError):
            inj.fire("anything.else")
        with pytest.raises(InjectedCrashError):
            inj.fire_write("any.write", b"data")

    def test_torn_write_keeps_a_strict_prefix(self):
        inj = FaultInjector([Fault("w", FaultKind.TORN_WRITE, fraction=0.5)])
        data, crash_after = inj.fire_write("w", b"0123456789")
        assert crash_after
        assert data == b"01234"
        with pytest.raises(InjectedCrashError):
            inj.crash_pending("w")

    def test_bit_flip_is_deterministic_and_silent(self):
        a = FaultInjector([Fault("w", FaultKind.BIT_FLIP)])
        b = FaultInjector([Fault("w", FaultKind.BIT_FLIP)])
        flipped_a, crash_a = a.fire_write("w", b"abcdef")
        flipped_b, _ = b.fire_write("w", b"abcdef")
        assert not crash_a
        assert flipped_a == flipped_b != b"abcdef"
        assert len(flipped_a) == 6

    def test_after_and_count_gate_firing(self):
        inj = FaultInjector([Fault("p", FaultKind.IO_ERROR, after=1, count=1)])
        inj.fire("p")  # skipped by `after`
        with pytest.raises(TransientIOError):
            inj.fire("p")
        inj.fire("p")  # count exhausted

    def test_media_error_is_sticky(self):
        inj = FaultInjector([Fault("p", FaultKind.MEDIA_ERROR, count=1)])
        for _ in range(3):  # `count` is ignored: the medium never heals
            with pytest.raises(UnrecoverableMediaError):
                inj.fire("p")

    def test_null_injector_refuses_faults(self):
        with pytest.raises(ValueError):
            NULL_INJECTOR.add(Fault("p", FaultKind.CRASH))


class TestWithRetry:
    def test_transient_errors_are_absorbed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError(5, "hiccup")
            return "done"

        retries = []
        policy = RetryPolicy(attempts=4, backoff=0.0)
        assert with_retry(flaky, policy, on_retry=lambda: retries.append(1)) == "done"
        assert len(calls) == 3
        assert len(retries) == 2

    def test_budget_exhaustion_reraises_the_last_error(self):
        def dead():
            raise TransientIOError(5, "always")

        with pytest.raises(TransientIOError):
            with_retry(dead, RetryPolicy(attempts=2, backoff=0.0))

    def test_media_errors_pass_straight_through(self):
        calls = []

        def media():
            calls.append(1)
            raise UnrecoverableMediaError("gone")

        with pytest.raises(UnrecoverableMediaError):
            with_retry(media, RetryPolicy(attempts=4, backoff=0.0))
        assert len(calls) == 1  # retrying a dead medium is meaningless


class TestEngineUnderFaults:
    @pytest.mark.parametrize("engine", ["disk", "mm"])
    def test_transient_io_errors_are_retried(self, db_path, engine):
        inj = FaultInjector([Fault("wal.force", FaultKind.IO_ERROR, count=2)])
        db = Database.open(db_path, engine=engine, injector=inj)
        with db.transaction():
            db.pnew(CredCard)
        assert db.storage.stats.io_retries >= 2
        db.close()

    @pytest.mark.parametrize("engine", ["disk", "mm"])
    def test_media_error_degrades_to_read_only(self, db_path, engine):
        inj = FaultInjector()
        db = Database.open(db_path, engine=engine, injector=inj)
        with db.transaction():
            ptr = db.pnew(CredCard).ptr

        inj.add(Fault("wal.append", FaultKind.MEDIA_ERROR))  # medium dies now
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).buy(None, 1.0)
        assert db.storage.degraded

        # Reads still work on the degraded store.
        with db.transaction():
            assert db.deref(ptr).purchases == 0
        # New mutations are refused outright.
        with pytest.raises(ReadOnlyStorageError):
            with db.transaction():
                db.deref(ptr).buy(None, 1.0)
        db.close()

        # The refused commit stays refused across a restart.
        db2 = Database.open(db_path, engine=engine)
        assert not db2.storage.degraded
        with db2.transaction():
            assert db2.deref(ptr).purchases == 0
            db2.deref(ptr).buy(None, 1.0)  # healthy medium: writable again
        db2.close()

    def test_torn_wal_append_loses_only_the_tail(self, db_path):
        """A power cut mid-append: the committed prefix must survive."""
        inj = FaultInjector()
        db = Database.open(db_path, engine="disk", injector=inj)
        with db.transaction():
            ptr = db.pnew(CredCard).ptr
        inj.add(Fault("wal.append", FaultKind.TORN_WRITE))
        with pytest.raises(InjectedCrashError):
            with db.transaction():
                db.deref(ptr).buy(None, 7.0)
        db.simulate_crash()

        recovered = Database.open(db_path, engine="disk")
        with recovered.transaction():
            card = recovered.deref(ptr)
            assert card.purchases == 0  # torn txn fully rolled back
        recovered.close()

    def test_simulate_crash_drops_unforced_tail(self, db_path):
        """simulate_crash must NOT force the log: un-synced records are
        exactly what a real crash loses."""
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            ptr = db.pnew(CredCard).ptr  # committed: forced, durable
        db.txn_manager.begin()
        db.deref(ptr).buy(None, 5.0)  # logged but never forced
        db.simulate_crash()

        recovered = Database.open(db_path, engine="disk")
        stats = recovered.storage.last_recovery
        # The in-flight txn's records died with the OS cache: nothing to
        # undo, no loser to roll back.
        assert stats.losers == 0
        assert stats.undo_applied == 0
        with recovered.transaction():
            card = recovered.deref(ptr)
            assert card.purchases == 0
            assert card.curr_bal == 0.0
        recovered.close()

    def test_forced_loser_is_undone_at_recovery(self, db_path):
        """Contrast: once a later force persists the loser's records
        (STEAL), recovery must roll them back."""
        db = Database.open(db_path, engine="disk")
        txn = db.txn_manager.begin()
        rid = db.storage.insert(txn.txid, b"loser-record")
        db.storage._wal.force()  # e.g. an eviction or group commit
        db.simulate_crash()

        recovered = Database.open(db_path, engine="disk")
        stats = recovered.storage.last_recovery
        assert stats.losers == 1
        assert stats.undo_applied >= 1
        probe = recovered.txn_manager.begin(system=True)
        assert not recovered.storage.exists(probe.txid, rid)
        recovered.txn_manager.commit(probe)
        recovered.close()


class TestInjectorThreadSafety:
    """A threaded multi-session database funnels every failpoint through
    one injector; the mutex must make hit counting and fault arming exact
    (the pre-lock code could double-count `hits` and skip an `after=k`
    fault entirely)."""

    def test_threaded_recording_assigns_each_index_exactly_once(self):
        import threading

        inj = FaultInjector(recording=True)
        n_threads, fires_each = 8, 200
        start = threading.Barrier(n_threads)

        def hammer(i):
            start.wait()
            for _ in range(fires_each):
                inj.fire(f"point.{i}")

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        total = n_threads * fires_each
        assert inj.hits == total
        # Interleaving order is arbitrary, but the global indices must be
        # a permutation-free sequence: 0..total-1, each exactly once.
        assert sorted(r.index for r in inj.trace) == list(range(total))
        for i in range(n_threads):
            assert sum(1 for r in inj.trace if r.point == f"point.{i}") == fires_each

    def test_threaded_after_count_fault_fires_exactly_once(self):
        import threading

        inj = FaultInjector([Fault("p", FaultKind.IO_ERROR, after=50, count=1)])
        n_threads, fires_each = 8, 40
        start = threading.Barrier(n_threads)
        raised = []
        raised_lock = threading.Lock()

        def hammer():
            start.wait()
            for _ in range(fires_each):
                try:
                    inj.fire("p")
                except TransientIOError:
                    with raised_lock:
                        raised.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert inj.hits == n_threads * fires_each
        assert len(raised) == 1  # not 0 (lost update) and not 2 (double fire)

    def test_threaded_crash_at_poisons_for_everyone(self):
        import threading

        inj = FaultInjector(crash_at=10)
        crashes = []
        lock = threading.Lock()

        def hammer():
            for _ in range(20):
                try:
                    inj.fire("x")
                except InjectedCrashError:
                    with lock:
                        crashes.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # Hit 10 crashes; every fire after it observes the poisoned state.
        assert len(crashes) == 4 * 20 - 10

    def test_stall_sleeps_then_carries_on(self):
        import time

        inj = FaultInjector([Fault("slow", FaultKind.STALL, delay=0.02, count=2)])
        t0 = time.monotonic()
        inj.fire("slow")
        data, crash = inj.fire_write("slow", b"payload")
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.04  # both stalls actually slept
        assert data == b"payload" and not crash  # a slow disk, not a dead one
        inj.fire("slow")  # count exhausted: no further delay, no error
