"""Tests for the storage integrity checker (``python -m repro.tools fsck``).

Covers the acceptance scenarios from the fault-injection issue: fsck is
clean on healthy and crash-recovered databases, and detects a flipped
page byte, an orphaned TriggerState, a dangling phoenix intention,
interior WAL corruption, and (as info only) a torn WAL tail.
"""

import json

import pytest

from repro import tools
from repro.fsck import fsck, fsck_database
from repro.objects.database import Database
from repro.storage.page import PAGE_SIZE
from repro.storage.wal import _FRAME
from repro.workloads.credit_card import CredCard


def _build(path, *, close=True):
    """A small db with an armed trigger and a couple of commits."""
    db = Database.open(path, engine="disk")
    with db.transaction():
        handle = db.pnew(CredCard, cred_lim=10.0)
        handle.AutoRaiseLimit(5.0)
        ptr = handle.ptr
    with db.transaction():
        db.deref(ptr).buy(None, 3.0)
    if close:
        db.close()
        return ptr, None
    return ptr, db


class TestCleanDatabases:
    def test_fresh_database_is_clean(self, db_path):
        _build(db_path)
        report = fsck(db_path)
        assert report.ok
        assert report.findings == []
        assert report.pages_scanned > 0
        assert report.records_scanned > 0
        assert report.trigger_states_scanned >= 1

    def test_crash_recovered_database_is_clean(self, db_path):
        """A crash state is *recoverable*, not corrupt: opening for the
        logical pass replays the log and the report comes out clean."""
        ptr, db = _build(db_path, close=False)
        db.txn_manager.begin()
        db.deref(ptr).buy(None, 99.0)  # in-flight at the crash
        db.simulate_crash()
        report = fsck(db_path)
        assert report.ok
        assert not report.by_code("ODE150")

    def test_mm_engine_is_checked_too(self, db_path):
        db = Database.open(db_path, engine="mm")
        with db.transaction():
            db.pnew(CredCard).AutoRaiseLimit(5.0)
        db.close()
        report = fsck(db_path, engine="mm")
        assert report.ok

    def test_missing_database_reports_ode151(self, db_path):
        report = fsck(db_path + "-nonexistent")
        assert report.by_code("ODE151")
        assert not report.ok


class TestSeededCorruption:
    def test_flipped_page_byte_is_detected(self, db_path):
        _build(db_path)
        with open(db_path + ".data", "r+b") as fh:
            fh.seek(PAGE_SIZE + 100)
            byte = fh.read(1)
            fh.seek(PAGE_SIZE + 100)
            fh.write(bytes([byte[0] ^ 0xFF]))
        report = fsck(db_path)
        assert report.by_code("ODE101")
        assert not report.ok

    def test_orphaned_trigger_state_is_detected(self, db_path):
        """Keep the TriggerState record but surgically drop its trigger
        index entry: the reverse scan must flag the orphan."""
        _, db = _build(db_path, close=False)
        with db.txn_manager.transaction(system=True) as txn:
            index = db.trigger_system.index
            for key, _rids in list(index._map.items(txn)):
                index._map.remove(txn, key)
        report = fsck_database(db)
        assert report.by_code("ODE131")
        assert not report.ok
        db.close()

    def test_dangling_phoenix_intention_is_detected(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction() as txn:
            ptr = db.pnew(CredCard).ptr
            db.phoenix.enqueue(txn, "notify", {"card": ptr})
        with db.transaction():
            db.pdelete(ptr)  # the payload now points at nothing
        report = fsck_database(db)
        assert report.by_code("ODE141")
        assert report.by_code("ODE142")  # pending intentions, as info
        assert not report.ok
        db.close()

    def test_pending_intentions_alone_are_only_info(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction() as txn:
            ptr = db.pnew(CredCard).ptr
            db.phoenix.enqueue(txn, "notify", {"card": ptr})
        report = fsck_database(db)
        assert report.by_code("ODE142")
        assert report.ok  # info findings do not fail the check
        db.close()

    def test_interior_wal_corruption_is_detected(self, db_path):
        """Corrupt an *interior* WAL record (valid frames follow it):
        unlike a torn tail, this is unrecoverable and must be an error."""
        _, db = _build(db_path, close=False)
        db.simulate_crash()  # leaves the synced log on disk
        with open(db_path + ".wal", "r+b") as fh:
            buf = fh.read()
            assert len(buf) > 3 * _FRAME.size, "need several records"
            fh.seek(_FRAME.size + 1)  # inside the first payload
            byte = buf[_FRAME.size + 1]
            fh.seek(_FRAME.size + 1)
            fh.write(bytes([byte ^ 0xFF]))
        report = fsck(db_path)
        assert report.by_code("ODE150")
        salvage_msg = report.by_code("ODE150")[0].message
        assert "salvage" in salvage_msg
        assert not report.ok

    def test_torn_wal_tail_is_info_only(self, db_path):
        _, db = _build(db_path, close=False)
        db.simulate_crash()
        with open(db_path + ".wal", "r+b") as fh:
            fh.seek(0, 2)
            size = fh.tell()
            fh.truncate(size - 3)  # chop mid-frame: a torn tail
        report = fsck(db_path)
        assert report.by_code("ODE152")
        assert report.ok  # recoverable, so the db is still clean


class TestCli:
    def test_cli_exit_codes(self, db_path, capsys):
        _build(db_path)
        assert tools.main(["fsck", db_path]) == 0
        assert "clean" in capsys.readouterr().out
        with open(db_path + ".data", "r+b") as fh:
            fh.seek(PAGE_SIZE + 100)
            byte = fh.read(1)
            fh.seek(PAGE_SIZE + 100)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert tools.main(["fsck", db_path]) == 1
        out = capsys.readouterr().out
        assert "ODE101" in out
        assert "NOT CLEAN" in out

    def test_cli_json_output(self, db_path, capsys):
        _build(db_path)
        assert tools.main(["fsck", db_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["pages_scanned"] > 0

    def test_cli_import_flag_loads_trigger_types(self, db_path, capsys):
        """Without the workload module imported, trigger-type checks are
        skipped (info); ``--import`` restores the full check."""
        _build(db_path)
        rc = tools.main(
            ["fsck", db_path, "--import", "repro.workloads.credit_card"]
        )
        assert rc == 0
        assert "ODE132" not in capsys.readouterr().out
