"""Extended-FSM run-time semantics: advance, quiesce, masks, dead states."""

import pytest

from repro.errors import FSMError
from repro.events.compile import compile_expression
from repro.events.fsm import DEAD

DECLS = ["A", "B", "C"]


def drive(fsm, stream, mask_values=None):
    """Run *stream* through *fsm*; returns list of accept flags."""
    values = mask_values or {}
    evaluate = lambda name: values.get(name, False)
    state = fsm.start
    state, _ = fsm.quiesce(state, evaluate)
    hits = []
    for symbol in stream:
        result = fsm.advance(state, symbol, evaluate)
        state = result.state
        hits.append(result.accepted)
    return hits


class TestSequences:
    def test_contiguous_sequence_required(self):
        fsm = compile_expression("A, B", DECLS).fsm
        assert drive(fsm, ["A", "B"]) == [False, True]
        assert drive(fsm, ["A", "C", "B"]) == [False, False, False]

    def test_match_can_start_anywhere(self):
        fsm = compile_expression("A, B", DECLS).fsm
        assert drive(fsm, ["C", "C", "A", "B"]) == [False, False, False, True]

    def test_overlapping_matches(self):
        fsm = compile_expression("A, A", DECLS).fsm
        assert drive(fsm, ["A", "A", "A"]) == [False, True, True]

    def test_fires_every_match_when_machine_keeps_running(self):
        fsm = compile_expression("A", DECLS).fsm
        assert drive(fsm, ["A", "B", "A"]) == [True, False, True]


class TestUnionStar:
    def test_union(self):
        fsm = compile_expression("A || B", DECLS).fsm
        assert drive(fsm, ["C", "A", "B"]) == [False, True, True]

    def test_star_interior(self):
        fsm = compile_expression("A, *B, C", DECLS).fsm
        assert drive(fsm, ["A", "C"]) == [False, True]
        assert drive(fsm, ["A", "B", "B", "C"]) == [False, False, False, True]
        # An interrupted run (B then C with no A before it) does not match.
        assert drive(fsm, ["B", "C"]) == [False, False]
        assert drive(fsm, ["A", "B", "C", "C"]) == [False, False, True, False]

    def test_plus(self):
        fsm = compile_expression("+A, B", DECLS).fsm
        assert drive(fsm, ["A", "B"]) == [False, True]
        assert drive(fsm, ["A", "A", "B"]) == [False, False, True]
        assert drive(fsm, ["B"]) == [False]


class TestAnchored:
    def test_anchored_matches_from_activation(self):
        fsm = compile_expression("^(A, B)", DECLS).fsm
        assert drive(fsm, ["A", "B"]) == [False, True]

    def test_anchored_dies_on_mismatch(self):
        fsm = compile_expression("^(A, B)", DECLS).fsm
        assert drive(fsm, ["C", "A", "B"]) == [False, False, False]

    def test_dead_state_stays_dead(self):
        fsm = compile_expression("^A", DECLS).fsm
        state, consumed = fsm.move(fsm.start, "B")
        assert state == DEAD
        result = fsm.advance(DEAD, "A", lambda m: True)
        assert result.state == DEAD
        assert not result.accepted


class TestMasks:
    def test_mask_gates_acceptance(self):
        fsm = compile_expression("A & hot", DECLS).fsm
        assert drive(fsm, ["A"], {"hot": False}) == [False]
        assert drive(fsm, ["A"], {"hot": True}) == [True]

    def test_mask_evaluated_at_event_time(self):
        fsm = compile_expression("(A & hot), B", DECLS).fsm
        values = {"hot": True}
        evaluate = lambda name: values[name]
        state = fsm.start
        result = fsm.advance(state, "A", evaluate)
        values["hot"] = False  # changing later must not matter
        result = fsm.advance(result.state, "B", evaluate)
        assert result.accepted

    def test_failed_mask_falls_back_to_search(self):
        fsm = compile_expression("(A & hot), B", DECLS).fsm
        values = {"hot": False}
        evaluate = lambda name: values[name]
        state = fsm.start
        state = fsm.advance(state, "A", evaluate).state
        values["hot"] = True
        state = fsm.advance(state, "A", evaluate).state  # fresh A, mask true
        result = fsm.advance(state, "B", evaluate)
        assert result.accepted

    def test_chained_masks_all_must_hold(self):
        fsm = compile_expression("A & m1 & m2", DECLS).fsm
        assert drive(fsm, ["A"], {"m1": True, "m2": True}) == [True]
        assert drive(fsm, ["A"], {"m1": True, "m2": False}) == [False]
        assert drive(fsm, ["A"], {"m1": False, "m2": True}) == [False]

    def test_masks_on_union_branches(self):
        fsm = compile_expression("(A & m1) || (B & m2)", DECLS).fsm
        assert drive(fsm, ["A"], {"m1": True}) == [True]
        assert drive(fsm, ["B"], {"m2": True}) == [True]
        assert drive(fsm, ["B"], {"m1": True, "m2": False}) == [False]

    def test_mask_evaluation_counts(self):
        fsm = compile_expression("A & m", DECLS).fsm
        calls = []

        def evaluate(name):
            calls.append(name)
            return False

        state = fsm.start
        fsm.advance(state, "A", evaluate)
        assert calls == ["m"]
        calls.clear()
        fsm.advance(state, "B", evaluate)  # no mask state entered
        assert calls == []

    def test_pseudo_self_loop_quiesces_at_fixpoint(self):
        # A mask state whose edge leads back to itself (a mask guarding a
        # nullable loop, e.g. `relative((*a) & m, b)`, restarts its own
        # obligation).  A mask has one value per instant, so re-checking
        # cannot change anything: the cascade must detect the revisit and
        # rest there instead of spinning.
        from repro.events.fsm import Fsm, FsmState

        looping = Fsm(
            [
                FsmState(0, False, ("m",), {"true:m": 0, "A": 0}),
            ],
            start=0,
            alphabet=frozenset({"A", "true:m", "false:m"}),
            anchored=False,
        )
        calls = []

        def evaluate(name):
            calls.append(name)
            return True

        result = looping.advance(0, "A", evaluate)
        assert result.state == 0
        assert calls == ["m"]  # evaluated once per instant, not per lap

    def test_mask_on_nullable_loop_quiesces(self):
        # End-to-end shape of the same bug: the compiled machine for
        # `relative((*A) & m, A)` carries the mask obligation on a state
        # whose false-edge restarts the obligation.
        fsm = compile_expression("relative((*A) & m, A)", DECLS).fsm
        state, _ = fsm.quiesce(fsm.start, lambda name: False)
        for symbol in ["A", "B", "A"]:
            result = fsm.advance(state, symbol, lambda name: False)
            assert result.consumed and not result.accepted
            state = result.state
        # with the mask true the match completes on the next A
        state, _ = fsm.quiesce(fsm.start, lambda name: True)
        assert fsm.advance(state, "A", lambda name: True).accepted


class TestAcceptDuringCascade:
    def test_accept_state_with_overlapping_mask_obligation_still_fires(self):
        """Regression (found by the property-based oracle): in
        ``+((A & m), A)`` the accept state also awaits *m* for the
        overlapping next iteration; when *m* is false the cascade moves the
        machine off the accept state — but the completed match must fire.
        """
        fsm = compile_expression("+((A & m), A)", DECLS).fsm
        values = {"m": True}
        evaluate = lambda name: values[name]
        state = fsm.start
        state = fsm.advance(state, "A", evaluate).state  # m true: armed
        values["m"] = False  # next-iteration mask will fail...
        result = fsm.advance(state, "A", evaluate)
        assert result.accepted  # ...but the completed match still fires

    def test_accept_seen_mid_cascade_with_true_mask_fires_once(self):
        fsm = compile_expression("+((A & m), A)", DECLS).fsm
        evaluate = lambda name: True
        state = fsm.start
        state = fsm.advance(state, "A", evaluate).state
        result = fsm.advance(state, "A", evaluate)
        assert result.accepted  # fired exactly once for this posting


class TestMaskResolutionPreservesParallelBranches:
    """Regressions (found by the property-based oracle): resolving one
    mask's pseudo-event must not discard NFA configurations that have no
    stake in that mask — e.g. progress in a parallel ``Seq`` branch, or an
    obligation on a *different* mask."""

    def test_failed_mask_keeps_parallel_seq_progress(self):
        # +((A & m) || (A, A)): the first A both arms the masked branch and
        # starts the two-A sequence; a false mask on the second A must not
        # reset the sequence branch, which completes regardless of masks.
        fsm = compile_expression("+((A & m) || (A, A))", DECLS).fsm
        values = {"m": True}
        evaluate = lambda name: values[name]
        state = fsm.start
        state, _ = fsm.quiesce(state, evaluate)
        result = fsm.advance(state, "A", evaluate)
        assert result.accepted  # m true: masked branch fires
        values["m"] = False
        result = fsm.advance(result.state, "A", evaluate)
        assert result.accepted  # (A, A) completed; false mask is irrelevant

    def test_failed_mask_keeps_other_masks_obligation(self):
        # (A & m) || (A & m2): one posting arms both obligations; m false
        # must leave the m2 obligation standing so m2 alone can fire.
        fsm = compile_expression("(A & m) || (A & m2)", DECLS).fsm
        assert drive(fsm, ["A"], {"m": False, "m2": True}) == [True]
        assert drive(fsm, ["A"], {"m": True, "m2": False}) == [True]
        assert drive(fsm, ["A"], {"m": False, "m2": False}) == [False]

    def test_junction_dies_with_its_only_obligation(self):
        # (A & m), B: when m fails, the ε-junction between A and the mask
        # obligation must die with it — B alone must not complete a match.
        fsm = compile_expression("(A & m), B", DECLS).fsm
        assert drive(fsm, ["A", "B"], {"m": False}) == [False, False]
        assert drive(fsm, ["A", "B"], {"m": True}) == [False, True]


class TestQuiesceAtActivation:
    def test_start_state_mask_evaluated_on_quiesce(self):
        # (+A) & m: after each A run the mask guards acceptance; also the
        # start of `(*A) & m`-style expressions can carry obligations.
        fsm = compile_expression("(+A) & m", DECLS).fsm
        assert drive(fsm, ["A"], {"m": True}) == [True]
        assert drive(fsm, ["A"], {"m": False}) == [False]


class TestTransitionCounts:
    def test_transition_count_and_len(self):
        fsm = compile_expression("A, B", DECLS).fsm
        assert len(fsm) >= 3
        assert fsm.transition_count() == sum(
            len(s.transitions) for s in fsm.states
        )
