"""Secondary-index tests: key encoding, maintenance, queries, MM refusal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObjectError, SchemaError
from repro.objects.database import Database
from repro.objects.index import encode_key
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Product(Persistent):
    sku = field(str, default="")
    price = field(float, default=0.0)
    stock = field(int, default=0)


class DiscountedProduct(Product):
    discount = field(float, default=0.1)


class TestKeyEncoding:
    @pytest.mark.parametrize(
        "lo,hi",
        [
            (-10, 10),
            (-10.5, -10.4),
            (0, 1),
            (-1e300, 1e300),
            (1, 1.5),
            ("apple", "banana"),
            ("", "a"),
            (False, True),
            (None, False),
            (True, 0),       # bools sort below numbers
            (1e308, "a"),    # numbers sort below strings
        ],
    )
    def test_order_preserved(self, lo, hi):
        assert encode_key(lo) < encode_key(hi)

    def test_equal_values_equal_keys(self):
        assert encode_key(2) == encode_key(2.0)
        assert encode_key("x") == encode_key("x")

    def test_unindexable_type_rejected(self):
        with pytest.raises(SchemaError):
            encode_key([1, 2])

    def test_huge_int_rejected(self):
        with pytest.raises(SchemaError):
            encode_key(2**70 + 1)

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.one_of(st.integers(-(2**50), 2**50), st.floats(allow_nan=False, allow_infinity=False)),
        b=st.one_of(st.integers(-(2**50), 2**50), st.floats(allow_nan=False, allow_infinity=False)),
    )
    def test_numeric_order_property(self, a, b):
        ka, kb = encode_key(a), encode_key(b)
        if a < b:
            assert ka < kb
        elif a > b:
            assert ka > kb
        else:
            assert ka == kb


class TestIndexLifecycle:
    @pytest.fixture
    def db(self, db_path):
        database = Database.open(db_path, engine="disk")
        yield database
        if not database.closed:
            database.close()

    def test_mm_ode_refuses_indexes(self, mm_db):
        with mm_db.transaction():
            with pytest.raises(ObjectError, match="B-trees"):
                mm_db.create_index(Product, "price")

    def test_create_and_find(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            db.pnew(Product, sku="a", price=10.0)
            db.pnew(Product, sku="b", price=20.0)
            db.pnew(Product, sku="c", price=10.0)
        with db.transaction():
            found = sorted(h.sku for h in db.find(Product, "price", 10.0))
            assert found == ["a", "c"]
            assert db.find(Product, "price", 99.0) == []

    def test_backfill_of_existing_objects(self, db):
        with db.transaction():
            db.pnew(Product, sku="pre", price=5.0)
        with db.transaction():
            db.create_index(Product, "price")
        with db.transaction():
            assert [h.sku for h in db.find(Product, "price", 5.0)] == ["pre"]

    def test_updates_maintain_index(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            ptr = db.pnew(Product, sku="x", price=10.0).ptr
        with db.transaction():
            db.deref(ptr).price = 33.0
        with db.transaction():
            assert db.find(Product, "price", 10.0) == []
            assert [h.sku for h in db.find(Product, "price", 33.0)] == ["x"]

    def test_pdelete_maintains_index(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            ptr = db.pnew(Product, sku="gone", price=7.0).ptr
        with db.transaction():
            db.pdelete(ptr)
        with db.transaction():
            assert db.find(Product, "price", 7.0) == []

    def test_aborted_update_leaves_index_unchanged(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            ptr = db.pnew(Product, sku="x", price=10.0).ptr
        txn = db.txn_manager.begin()
        db.deref(ptr).price = 99.0
        db.txn_manager.abort(txn)
        with db.transaction():
            assert [h.sku for h in db.find(Product, "price", 10.0)] == ["x"]
            assert db.find(Product, "price", 99.0) == []

    def test_range_query(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            for i in range(20):
                db.pnew(Product, sku=f"p{i}", price=float(i))
        with db.transaction():
            prices = [h.price for h in db.find_range(Product, "price", 5.0, 8.0)]
            assert prices == [5.0, 6.0, 7.0, 8.0]

    def test_index_covers_subclasses(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            db.pnew(Product, sku="base", price=1.0)
            db.pnew(DiscountedProduct, sku="disc", price=1.0)
        with db.transaction():
            found = sorted(h.sku for h in db.find(Product, "price", 1.0))
            assert found == ["base", "disc"]

    def test_index_survives_reopen(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            db.create_index(Product, "stock")
            db.pnew(Product, sku="kept", stock=42)
        db.close()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            assert [h.sku for h in db2.find(Product, "stock", 42)] == ["kept"]
            # Maintenance continues in the new session.
            db2.pnew(Product, sku="new", stock=42)
        with db2.transaction():
            found = sorted(h.sku for h in db2.find(Product, "stock", 42))
            assert found == ["kept", "new"]
        db2.close()

    def test_duplicate_index_rejected(self, db):
        with db.transaction():
            db.create_index(Product, "price")
            with pytest.raises(ObjectError, match="already exists"):
                db.create_index(Product, "price")

    def test_unknown_field_rejected(self, db):
        with db.transaction():
            with pytest.raises(SchemaError):
                db.create_index(Product, "nonexistent")

    def test_find_without_index_raises(self, db):
        with db.transaction():
            with pytest.raises(ObjectError, match="no index"):
                db.find(Product, "sku", "a")
