"""Inheritance tests: events and triggers across class hierarchies."""

import pytest

from repro.core.declarations import trigger
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class BaseAccount(Persistent):
    balance = field(float, default=0.0)
    log = field(list, default=[])

    __events__ = ["after deposit"]
    __triggers__ = [
        trigger(
            "OnDeposit",
            "after deposit",
            action=lambda self, ctx: self.note("base-trigger"),
            perpetual=True,
        )
    ]

    def deposit(self, amount):
        self.balance += amount

    def note(self, tag):
        self.log = self.log + [tag]


class SavingsAccount(BaseAccount):
    rate = field(float, default=0.01)

    __events__ = ["after add_interest"]
    __triggers__ = [
        trigger(
            "OnInterest",
            "after add_interest",
            action=lambda self, ctx: self.note("derived-trigger"),
            perpetual=True,
        ),
        trigger(
            "DepositThenInterest",
            "after deposit, after add_interest",
            action=lambda self, ctx: self.note("composite-across-levels"),
            perpetual=True,
        ),
    ]

    def add_interest(self):
        self.balance *= 1 + self.rate


class OverridingAccount(BaseAccount):
    def deposit(self, amount):  # override: doubles everything
        self.balance += 2 * amount


class TestEventInheritance:
    def test_base_events_posted_to_derived_objects(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(SavingsAccount)
            ptr = acct.ptr
            acct.OnDeposit()  # base-class trigger on derived object
            acct.deposit(10.0)
        with db.transaction():
            assert db.deref(ptr).log == ["base-trigger"]

    def test_derived_declares_new_events(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(SavingsAccount)
            ptr = acct.ptr
            acct.OnInterest()
            acct.add_interest()
        with db.transaction():
            assert db.deref(ptr).log == ["derived-trigger"]

    def test_composite_spans_base_and_derived_events(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(SavingsAccount)
            ptr = acct.ptr
            acct.DepositThenInterest()
            acct.deposit(10.0)
            acct.add_interest()
        with db.transaction():
            assert db.deref(ptr).log == ["composite-across-levels"]

    def test_base_trigger_ignores_derived_events(self, any_engine_db):
        """'A base class trigger should not see the events of a derived
        class' — derived event integers miss the base FSM's transitions."""
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(SavingsAccount)
            ptr = acct.ptr
            acct.OnDeposit()
            acct.add_interest()  # derived event: must not disturb base FSM
            acct.deposit(1.0)
        with db.transaction():
            assert db.deref(ptr).log == ["base-trigger"]

    def test_base_objects_unaffected_by_derived_declarations(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            base = db.pnew(BaseAccount)
            assert not hasattr(base.obj, "add_interest")
            base.OnDeposit()
            base.deposit(5.0)
            assert base.log == ["base-trigger"]


class TestVirtualDispatch:
    def test_wrapper_calls_overridden_method(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(OverridingAccount)
            ptr = acct.ptr
            acct.OnDeposit()
            acct.deposit(10.0)
        with db.transaction():
            loaded = db.deref(ptr)
            assert loaded.balance == 20.0  # override ran
            assert loaded.log == ["base-trigger"]  # event still posted


class TestMetatypeInheritance:
    def test_derived_metatype_merges_events(self):
        symbols = {d.symbol for d in SavingsAccount.__metatype__.declared_events}
        assert symbols == {"after deposit", "after add_interest"}

    def test_derived_all_triggers_include_base(self):
        names = {i.name for i in SavingsAccount.__metatype__.all_trigger_infos}
        assert names == {"OnDeposit", "OnInterest", "DepositThenInterest"}

    def test_own_trigger_infos_exclude_base(self):
        names = {i.name for i in SavingsAccount.__metatype__.trigger_infos}
        assert names == {"OnInterest", "DepositThenInterest"}

    def test_trigger_numbers_index_defining_class(self):
        base_info = BaseAccount.__metatype__.trigger_info(0)
        assert base_info.name == "OnDeposit"
        derived_first = SavingsAccount.__metatype__.trigger_info(0)
        assert derived_first.name == "OnInterest"

    def test_event_int_shared_between_base_and_derived(self):
        base_int = BaseAccount.__metatype__.event_ints["after deposit"]
        derived_int = SavingsAccount.__metatype__.event_ints["after deposit"]
        assert base_int == derived_int

    def test_trigobjtype_points_at_defining_class(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            acct = db.pnew(SavingsAccount)
            acct.OnDeposit()
            acct.OnInterest()
            triggers = db.trigger_system.active_triggers(acct.ptr)
            by_name = {info.name: tstate for _, tstate, info in triggers}
            assert by_name["OnDeposit"].trigobjtype == "BaseAccount"
            assert by_name["OnInterest"].trigobjtype == "SavingsAccount"


class TestPassiveDerived:
    def test_passive_subclass_of_active_base_inherits_machinery(self, any_engine_db):
        db = any_engine_db

        class PlainChild(BaseAccount):
            nickname = field(str, default="")

        with db.transaction():
            child = db.pnew(PlainChild)
            ptr = child.ptr
            child.OnDeposit()
            child.deposit(3.0)
        with db.transaction():
            assert db.deref(ptr).log == ["base-trigger"]
