"""End-to-end integration: the paper's Section 4 credit-card scenario."""

import pytest

from repro.objects.database import Database
from repro.workloads.credit_card import CredCard, CreditCardWorkload, Customer


class TestPaperScenario:
    @pytest.fixture
    def card(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            customer = db.pnew(Customer, name="Narain")
            handle = db.pnew(
                CredCard, issued_to=customer.ptr, cred_lim=1000.0
            )
            handle.DenyCredit()
            handle.AutoRaiseLimit(500.0)
            return handle.ptr

    def test_normal_purchase_commits(self, any_engine_db, card):
        db = any_engine_db
        with db.transaction():
            db.deref(card).buy(None, 300.0)
        with db.transaction():
            assert db.deref(card).curr_bal == 300.0

    def test_deny_credit_blocks_over_limit(self, any_engine_db, card):
        db = any_engine_db
        with db.transaction():
            db.deref(card).buy(None, 300.0)
        # tabort from the trigger aborts the purchase transaction; the O++
        # transaction-block semantics swallow the abort.
        with db.transaction():
            db.deref(card).buy(None, 900.0)
        with db.transaction():
            loaded = db.deref(card)
            assert loaded.curr_bal == 300.0
            # The black mark was part of the aborted transaction: rolled
            # back with it (event roll-back via state roll-back).
            assert loaded.black_marks == []

    def test_auto_raise_limit_lifecycle(self, any_engine_db, card):
        db = any_engine_db
        with db.transaction():
            db.deref(card).buy(None, 850.0)  # >80% of limit, good history
        with db.transaction():
            db.deref(card).pay_bill(100.0)  # relative: any later PayBill
        with db.transaction():
            loaded = db.deref(card)
            assert loaded.cred_lim == 1500.0
            names = {
                info.name
                for _, _, info in db.trigger_system.active_triggers(card)
            }
            assert names == {"DenyCredit"}  # AutoRaiseLimit was once-only

    def test_auto_raise_requires_more_cred_at_buy_time(self, any_engine_db, card):
        db = any_engine_db
        with db.transaction():
            db.deref(card).buy(None, 100.0)  # only 10%: MoreCred false
        with db.transaction():
            db.deref(card).pay_bill(50.0)
        with db.transaction():
            assert db.deref(card).cred_lim == 1000.0  # unchanged

    def test_paybill_much_later_still_fires_relative(self, any_engine_db, card):
        db = any_engine_db
        with db.transaction():
            db.deref(card).buy(None, 850.0)
        for _ in range(3):
            with db.transaction():
                db.deref(card).buy(None, 10.0)
        with db.transaction():
            db.deref(card).pay_bill(5.0)
        with db.transaction():
            assert db.deref(card).cred_lim == 1500.0


class TestGlobalCompositeEvents:
    """Ode vs Sentinel: trigger state is persistent, so a composite event's
    constituent events may span applications (sessions)."""

    def test_composite_spans_sessions(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            handle = db.pnew(CredCard, cred_lim=1000.0)
            ptr = handle.ptr
            handle.AutoRaiseLimit(250.0)
            handle.buy(None, 900.0)  # arms the relative pattern
        db.close()

        db2 = Database.open(db_path, engine="disk")  # "another application"
        with db2.transaction():
            db2.deref(ptr).pay_bill(10.0)  # completes the pattern
        with db2.transaction():
            assert db2.deref(ptr).cred_lim == 1250.0
        db2.close()

    def test_activation_args_persist_across_sessions(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            handle = db.pnew(CredCard, cred_lim=1000.0)
            ptr = handle.ptr
            handle.AutoRaiseLimit(750.0)
        db.close()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            triggers = db2.trigger_system.active_triggers(ptr)
            (_, tstate, info) = triggers[0]
            assert info.name == "AutoRaiseLimit"
            assert tstate.params == {"amount": 750.0}
        db2.close()

    def test_crash_preserves_armed_trigger_state(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            handle = db.pnew(CredCard, cred_lim=1000.0)
            ptr = handle.ptr
            handle.AutoRaiseLimit(500.0)
        with db.transaction():
            db.deref(ptr).buy(None, 900.0)  # committed: armed state durable
        db.simulate_crash()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            db2.deref(ptr).pay_bill(1.0)
        with db2.transaction():
            assert db2.deref(ptr).cred_lim == 1500.0
        db2.close()

    def test_crash_rolls_back_uncommitted_fsm_advance(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            handle = db.pnew(CredCard, cred_lim=1000.0)
            ptr = handle.ptr
            handle.AutoRaiseLimit(500.0)
        txn = db.txn_manager.begin()
        db.deref(ptr).buy(None, 900.0)  # advances FSM, NOT committed
        db.simulate_crash()
        db2 = Database.open(db_path, engine="disk")
        with db2.transaction():
            db2.deref(ptr).pay_bill(1.0)  # must NOT fire: arm was undone
        with db2.transaction():
            assert db2.deref(ptr).cred_lim == 1000.0
        db2.close()


class TestWorkloadDriver:
    def test_workload_is_deterministic(self, mm_db):
        workload = CreditCardWorkload(seed=7)
        ptrs = workload.setup(mm_db, 10, activate_deny=True)
        result = workload.run(mm_db, ptrs, 200)
        assert result.operations == 200
        assert result.buys + result.payments + result.queries == 200
        assert result.buys > result.payments > 0

    def test_deny_credit_under_workload(self, mm_db):
        workload = CreditCardWorkload(seed=11, buy_fraction=0.9, pay_fraction=0.05)
        ptrs = workload.setup(mm_db, 4, cred_lim=300.0, activate_deny=True)
        workload.run(mm_db, ptrs, 300)
        with mm_db.transaction():
            for ptr in ptrs:
                card = mm_db.deref(ptr)
                # DenyCredit aborts any transaction that would exceed the
                # limit, so committed balances never exceed it.
                assert card.curr_bal <= card.cred_lim + 1e-9
