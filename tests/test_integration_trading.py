"""End-to-end integration: the program-trading domain (paper Section 1/8)."""

import pytest

from repro.core.declarations import trigger
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.workloads.trading import Portfolio, Stock, TickStream


class MomentumStock(Stock):
    """Stock with a pattern trigger: three consecutive rising ticks."""

    signals = field(int, default=0)

    __triggers__ = [
        trigger(
            "ThreeRises",
            "(after set_price & rising), (after set_price & rising), "
            "(after set_price & rising)",
            action=lambda self, ctx: self.signal(),
            perpetual=True,
        )
    ]

    def signal(self):
        self.signals += 1


class TestPatternTriggers:
    def test_three_rising_ticks_fire(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            stock = db.pnew(MomentumStock, symbol="X", price=100.0, prev_price=100.0)
            ptr = stock.ptr
            stock.ThreeRises()
        with db.transaction():
            handle = db.deref(ptr)
            for price in (101.0, 102.0, 103.0):
                handle.set_price(price)
        with db.transaction():
            assert db.deref(ptr).signals == 1

    def test_interrupted_rise_does_not_fire(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            stock = db.pnew(MomentumStock, symbol="X", price=100.0, prev_price=100.0)
            ptr = stock.ptr
            stock.ThreeRises()
        with db.transaction():
            handle = db.deref(ptr)
            for price in (101.0, 99.0, 102.0, 103.0):
                handle.set_price(price)
        with db.transaction():
            assert db.deref(ptr).signals == 0  # longest run is 2

    def test_overlapping_runs_fire_repeatedly(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            stock = db.pnew(MomentumStock, symbol="X", price=100.0, prev_price=100.0)
            ptr = stock.ptr
            stock.ThreeRises()
        with db.transaction():
            handle = db.deref(ptr)
            for price in (101.0, 102.0, 103.0, 104.0, 105.0):
                handle.set_price(price)
        with db.transaction():
            # runs ending at ticks 3, 4, 5
            assert db.deref(ptr).signals == 3


class TestPortfolio:
    def test_buy_and_sell(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            portfolio = db.pnew(Portfolio, owner="desk-1", cash=10_000.0)
            ptr = portfolio.ptr
            portfolio.buy_shares("T", 100, 58.0)
        with db.transaction():
            loaded = db.deref(ptr)
            assert loaded.positions == {"T": 100}
            assert loaded.cash == 10_000.0 - 5800.0
            loaded.sell_shares("T", 40, 60.0)
        with db.transaction():
            loaded = db.deref(ptr)
            assert loaded.positions == {"T": 60}
            assert loaded.cash == pytest.approx(10_000.0 - 5800.0 + 2400.0)

    def test_overselling_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            portfolio = db.pnew(Portfolio, cash=1000.0)
            ptr = portfolio.ptr
        with pytest.raises(ValueError):
            with db.transaction():
                db.deref(ptr).sell_shares("T", 1, 50.0)


class TestTickStream:
    def test_deterministic(self):
        a = TickStream({"T": 60.0, "GC": 2000.0}, seed=3)
        b = TickStream({"T": 60.0, "GC": 2000.0}, seed=3)
        assert list(a.ticks(50)) == list(b.ticks(50))

    def test_prices_stay_positive(self):
        stream = TickStream({"T": 0.05}, seed=1, volatility=0.9)
        for _, price in stream.ticks(200):
            assert price > 0

    def test_apply_drives_database(self, mm_db):
        db = mm_db
        with db.transaction():
            stocks = {
                "T": db.pnew(Stock, symbol="T", price=60.0).ptr,
                "GC": db.pnew(Stock, symbol="GC", price=2000.0).ptr,
            }
        stream = TickStream({"T": 60.0, "GC": 2000.0}, seed=5)
        applied = stream.apply(db, stocks, 100, ticks_per_txn=7)
        assert applied == 100
        with db.transaction():
            for symbol, ptr in stocks.items():
                assert db.deref(ptr).price == pytest.approx(
                    stream.prices[symbol], rel=0.01
                )

    def test_pattern_triggers_under_stream(self, mm_db):
        """Momentum triggers fire a plausible number of times on a walk."""
        db = mm_db
        with db.transaction():
            stock = db.pnew(
                MomentumStock, symbol="T", price=60.0, prev_price=60.0
            )
            ptr = stock.ptr
            stock.ThreeRises()
        stream = TickStream({"T": 60.0}, seed=13, drift=0.01)
        stream.apply(db, {"T": ptr}, 200)
        with db.transaction():
            signals = db.deref(ptr).signals
        assert signals > 0  # upward drift: some 3-runs must occur
        assert signals < 200
