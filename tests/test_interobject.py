"""Inter-object trigger tests (Section 8 extension)."""

import pytest

from repro.core.interobject import InterObjectTrigger
from repro.errors import TriggerDeclarationError
from repro.objects.database import Database
from repro.workloads.trading import Stock

BOUGHT: list[dict] = []


@pytest.fixture(autouse=True)
def _clear():
    BOUGHT.clear()
    yield
    BOUGHT.clear()


def make_stocks(db):
    with db.transaction():
        att = db.pnew(Stock, symbol="T", price=70.0, prev_price=70.0)
        gold = db.pnew(Stock, symbol="GC", price=2000.0, prev_price=2000.0)
        return att.ptr, gold.ptr


def make_trigger(db, att, gold, name="buy_att", perpetual=False):
    return InterObjectTrigger(
        db,
        name,
        anchors={
            "att_low": (att, "after set_price & below60"),
            "gold_stable": (gold, "after set_price & stable"),
        },
        expression="(att_low, gold_stable) || (gold_stable, att_low)",
        action=lambda self, ctx: BOUGHT.append(ctx.params["anchors"]),
        anchor_masks={
            "att_low": {"below60": lambda self: self.price < 60},
            "gold_stable": {
                "stable": lambda self: abs(self.price - self.prev_price) < 1.0
            },
        },
        perpetual=perpetual,
    )


class TestPaperScenario:
    def test_fires_when_both_conditions_met(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        with db.transaction():
            db.deref(att).set_price(59.0)
        with db.transaction():
            db.deref(gold).set_price(2000.5)
        assert len(BOUGHT) == 1
        assert BOUGHT[0]["att_low"] == att
        assert BOUGHT[0]["gold_stable"] == gold

    def test_either_order_of_anchor_events(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        with db.transaction():
            db.deref(gold).set_price(2000.4)  # stable first
        with db.transaction():
            db.deref(att).set_price(58.0)
        assert len(BOUGHT) == 1

    def test_no_fire_when_condition_unmet(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        with db.transaction():
            db.deref(att).set_price(65.0)  # not below 60
        with db.transaction():
            db.deref(gold).set_price(2000.1)
        assert BOUGHT == []

    def test_once_only_fires_once(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        with db.transaction():
            db.deref(att).set_price(59.0)
        with db.transaction():
            db.deref(gold).set_price(2000.2)
        with db.transaction():
            db.deref(att).set_price(55.0)
        with db.transaction():
            db.deref(gold).set_price(2000.3)
        assert len(BOUGHT) == 1

    def test_empty_anchors_rejected(self, any_engine_db):
        with pytest.raises(TriggerDeclarationError):
            InterObjectTrigger(
                any_engine_db, "nope", {}, "x", lambda s, c: None
            )


class TestPersistence:
    def test_survives_session_cycle(self, db_path):
        db = Database.open(db_path, engine="disk")
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        with db.transaction():
            db.deref(att).set_price(59.0)  # first half matched
        db.close()

        # A new "application": re-create the trigger object (recompilation
        # analogue), then complete the pattern.
        db2 = Database.open(db_path, engine="disk")
        make_trigger(db2, att, gold)
        with db2.transaction():
            db2.deref(gold).set_price(2000.2)
        assert len(BOUGHT) == 1
        db2.close()

    def test_recreation_does_not_duplicate_activations(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        make_trigger(db, att, gold)
        make_trigger(db, att, gold)  # idempotent re-registration
        with db.transaction():
            assert len(db.trigger_system.active_triggers(att)) == 1

    def test_deactivate_removes_everything(self, any_engine_db):
        db = any_engine_db
        att, gold = make_stocks(db)
        inter = make_trigger(db, att, gold)
        inter.deactivate()
        with db.transaction():
            assert db.trigger_system.active_triggers(att) == []
            assert db.trigger_system.active_triggers(gold) == []
        with db.transaction():
            db.deref(att).set_price(10.0)
        with db.transaction():
            db.deref(gold).set_price(2000.2)
        assert BOUGHT == []
