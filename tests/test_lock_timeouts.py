"""Lock-wait deadlines, timeouts, poisoning, and no-leak properties.

These tests drive :meth:`LockManager.acquire_blocking` directly — some on
real threads (bounded by short timeouts, so tier-1 stays fast), some with
hypothesis over arbitrary acquire/timeout/release sequences.  The
end-to-end session-level behaviour (``session.run(deadline=...)``) lives
in ``test_retry_classifier.py`` and ``test_degradation.py``.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    TransactionDeadlineError,
    WaitPoisonedError,
)
from repro.storage.locks import LockManager, LockMode, LockRequestStatus


@pytest.fixture
def lm():
    return LockManager()


def spawn(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.001)


class TestTimeouts:
    def test_timeout_raises_and_drops_the_request(self, lm):
        lm.acquire(1, "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire_blocking(2, "r", LockMode.S, timeout=0.02)
        assert lm.stats.timeouts == 1
        # The timed-out request left the queue: no stale waiter, no edge.
        assert lm.waits_for_edges() == {}
        assert lm.locks_held(2) == frozenset()
        # And the holder is undisturbed.
        assert lm.mode_held(1, "r") is LockMode.X

    def test_timeout_loser_can_retry_after_release(self, lm):
        lm.acquire(1, "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire_blocking(2, "r", LockMode.X, timeout=0.02)
        lm.release_all(1)
        lm.acquire_blocking(2, "r", LockMode.X, timeout=0.5)  # granted now
        assert lm.mode_held(2, "r") is LockMode.X

    def test_default_budget_is_wait_timeout(self, lm):
        lm.wait_timeout = 0.02
        lm.acquire(1, "r", LockMode.X)
        t0 = time.monotonic()
        with pytest.raises(LockTimeoutError):
            lm.acquire_blocking(2, "r", LockMode.S)
        assert time.monotonic() - t0 < 5.0  # bounded by wait_timeout, not 30s

    def test_release_mid_wait_grants_instead_of_timing_out(self, lm):
        lm.acquire(1, "r", LockMode.X)
        granted = []

        def waiter():
            lm.acquire_blocking(2, "r", LockMode.S, timeout=10.0)
            granted.append(True)

        thread = spawn(waiter)
        wait_until(lambda: lm.waits_for_edges().get(2))
        lm.release_all(1)
        thread.join(timeout=5)
        assert granted and lm.mode_held(2, "r") is LockMode.S


class TestDeadlines:
    def test_expired_deadline_cancels_the_wait(self, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.set_deadline(2, time.monotonic() + 0.02)
        with pytest.raises(TransactionDeadlineError):
            lm.acquire_blocking(2, "r", LockMode.S, timeout=30.0)
        assert lm.stats.deadline_aborts == 1
        assert lm.waits_for_edges() == {}

    def test_already_expired_deadline_fails_fast(self, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.set_deadline(2, time.monotonic() - 1.0)
        t0 = time.monotonic()
        with pytest.raises(TransactionDeadlineError):
            lm.acquire_blocking(2, "r", LockMode.S, timeout=30.0)
        assert time.monotonic() - t0 < 1.0  # no sleep before the check

    def test_grant_wins_over_expired_deadline(self, lm):
        """An already-satisfiable request is granted even past its
        deadline — only *waiting* is cancelled."""
        lm.set_deadline(1, time.monotonic() - 1.0)
        lm.acquire_blocking(1, "r", LockMode.X)
        assert lm.mode_held(1, "r") is LockMode.X

    def test_set_deadline_wakes_a_parked_waiter(self, lm):
        lm.acquire(1, "r", LockMode.X)
        errors = []

        def waiter():
            try:
                lm.acquire_blocking(2, "r", LockMode.S, timeout=30.0)
            except TransactionDeadlineError as exc:
                errors.append(exc)

        thread = spawn(waiter)
        wait_until(lambda: lm.waits_for_edges().get(2))
        lm.set_deadline(2, time.monotonic() + 0.02)  # notify + short fuse
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_release_all_clears_the_deadline(self, lm):
        lm.set_deadline(7, time.monotonic() - 1.0)
        lm.release_all(7)
        # A recycled txid 7 must not inherit the stale deadline.
        lm.acquire(1, "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire_blocking(7, "r", LockMode.S, timeout=0.02)
        assert lm.stats.deadline_aborts == 0  # timed out, not deadline-aborted


class TestPoison:
    def test_poison_wakes_a_parked_waiter(self, lm):
        lm.acquire(1, "r", LockMode.X)
        errors = []

        def waiter():
            try:
                lm.acquire_blocking(2, "r", LockMode.S, timeout=30.0)
            except WaitPoisonedError as exc:
                errors.append(exc)

        thread = spawn(waiter)
        wait_until(lambda: lm.waits_for_edges().get(2))
        lm.poison("the process died")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(errors) == 1 and "the process died" in str(errors[0])
        assert lm.stats.poisoned_waits == 1
        assert lm.poisoned

    def test_poison_fails_future_blocked_waits_fast(self, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.poison("closed")
        t0 = time.monotonic()
        with pytest.raises(WaitPoisonedError):
            lm.acquire_blocking(2, "r", LockMode.S, timeout=30.0)
        assert time.monotonic() - t0 < 1.0

    def test_poison_still_grants_compatible_requests(self, lm):
        lm.poison("closed")
        lm.acquire_blocking(1, "fresh", LockMode.X)  # no conflict: granted
        assert lm.mode_held(1, "fresh") is LockMode.X

    def test_poison_wakes_every_waiter_not_just_one(self, lm):
        lm.acquire(1, "r", LockMode.X)
        errors = []
        errors_lock = threading.Lock()

        def waiter(txid):
            try:
                lm.acquire_blocking(txid, "r", LockMode.S, timeout=30.0)
            except WaitPoisonedError as exc:
                with errors_lock:
                    errors.append(exc)

        threads = [spawn(lambda t=t: waiter(t)) for t in (2, 3, 4)]
        wait_until(lambda: len(lm.waits_for_edges()) == 3)
        lm.poison("crash")
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive()
        assert len(errors) == 3


class TestUpgradeFairnessThreaded:
    def test_upgrade_queue_jumps_but_fifo_holds_behind_it(self, lm):
        """Satellite: S→X upgrade fairness on real threads.  The upgrader
        (already a holder) overtakes a fresh S request in the queue; the
        fresh request is granted only after the upgrader releases."""
        assert lm.acquire(1, "r", LockMode.S) is LockRequestStatus.GRANTED
        assert lm.acquire(2, "r", LockMode.S) is LockRequestStatus.GRANTED

        order = []
        order_lock = threading.Lock()

        def upgrader():
            lm.acquire_blocking(1, "r", LockMode.X, timeout=30.0)  # S→X
            with order_lock:
                order.append("upgrade")

        thread_a = spawn(upgrader)
        wait_until(lambda: lm.waits_for_edges().get(1))

        def fresh_reader():
            lm.acquire_blocking(3, "r", LockMode.S, timeout=30.0)
            with order_lock:
                order.append("fresh")

        thread_b = spawn(fresh_reader)
        # The fresh S waits behind the queue-jumped upgrade (edge 3 -> 1).
        wait_until(lambda: 1 in lm.waits_for_edges().get(3, frozenset()))

        lm.release_all(2)  # the other S holder leaves -> upgrade grantable
        thread_a.join(timeout=5)
        assert not thread_a.is_alive()
        assert lm.mode_held(1, "r") is LockMode.X
        assert thread_b.is_alive()  # still parked behind the X

        lm.release_all(1)
        thread_b.join(timeout=5)
        assert not thread_b.is_alive()
        assert order == ["upgrade", "fresh"]
        assert lm.mode_held(3, "r") is LockMode.S

    def test_concurrent_upgraders_one_wins_one_deadlocks(self, lm):
        """Two S holders both upgrading is the classic conversion deadlock;
        the victim's abort must leave the winner grantable."""
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        results = {}

        def upgrade(txid):
            try:
                lm.acquire_blocking(txid, "r", LockMode.X, timeout=30.0)
                results[txid] = "granted"
            except DeadlockError:
                results[txid] = "victim"
                lm.release_all(txid)

        thread_1 = spawn(lambda: upgrade(1))
        wait_until(lambda: lm.waits_for_edges().get(1))
        thread_2 = spawn(lambda: upgrade(2))
        thread_1.join(timeout=5)
        thread_2.join(timeout=5)
        assert not thread_1.is_alive() and not thread_2.is_alive()
        assert sorted(results.values()) == ["granted", "victim"]
        winner = next(t for t, r in results.items() if r == "granted")
        assert lm.mode_held(winner, "r") is LockMode.X


# -- hypothesis: timeouts never leak -----------------------------------------

TXIDS = st.integers(min_value=1, max_value=4)
RESOURCES = st.sampled_from(["a", "b", "c"])
MODES = st.sampled_from([LockMode.S, LockMode.X])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), TXIDS, RESOURCES, MODES),
        st.tuples(st.just("timeout"), TXIDS, RESOURCES, MODES),
        st.tuples(st.just("release"), TXIDS, RESOURCES, MODES),
    ),
    max_size=40,
)


STRIPE_COUNTS = st.sampled_from([1, 2, 8])


class TestNoLeakProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=OPS, stripes=STRIPE_COUNTS)
    def test_release_all_always_empties_the_manager(self, ops, stripes):
        """The timeout path (`_drop_request`) composed with arbitrary
        acquires and releases must never strand a grant or a queue entry
        in any stripe: after every transaction's `release_all`, every
        stripe is empty.  This is the property that makes
        `finally: release_all` a complete cleanup story for
        timed-out/deadline-aborted transactions."""
        lm = LockManager(stripes=stripes)
        for op, txid, resource, mode in ops:
            if op == "acquire":
                try:
                    lm.acquire(txid, resource, mode)
                except DeadlockError:
                    lm.release_all(txid)
            elif op == "timeout":
                # What acquire_blocking does when the wait expires, minus
                # the sleeping: drop the queued request, keep grants.
                lm._drop_request(txid, resource)
            else:
                lm.release_all(txid)
        for txid in range(1, 5):
            lm.release_all(txid)
        for stripe in lm._stripes:
            assert stripe.table == {}
            assert dict(stripe.held) == {}
        assert lm.waits_for_edges() == {}

    @settings(max_examples=100, deadline=None)
    @given(ops=OPS, stripes=STRIPE_COUNTS)
    def test_held_and_table_always_agree(self, ops, stripes):
        """Mid-sequence consistency, per stripe: every `held` entry is a
        real holder in that stripe's table and vice versa (a desync is how
        a timeout could leak a grant)."""
        lm = LockManager(stripes=stripes)
        for op, txid, resource, mode in ops:
            if op == "acquire":
                try:
                    lm.acquire(txid, resource, mode)
                except DeadlockError:
                    lm.release_all(txid)
            elif op == "timeout":
                lm._drop_request(txid, resource)
            else:
                lm.release_all(txid)
            for stripe in lm._stripes:
                held_view = {
                    (txid2, res)
                    for txid2, resources in stripe.held.items()
                    for res in resources
                }
                table_view = {
                    (txid2, res)
                    for res, entry in stripe.table.items()
                    for txid2 in entry.holders
                }
                assert held_view == table_view


# -- hypothesis: striped == single-stripe, observably --------------------------


class TestStripeEquivalence:
    """Satellite: striping is an implementation detail.  Any op sequence
    must be observably identical on a 1-stripe manager (the old single
    mutex) and a many-stripe one — same grant/wait statuses, same
    deadlock victims, same waits-for edges, same held sets, same counter
    totals."""

    @settings(max_examples=150, deadline=None)
    @given(ops=OPS)
    def test_lockstep_with_single_stripe(self, ops):
        base = LockManager(stripes=1)
        striped = LockManager(stripes=8)
        for op, txid, resource, mode in ops:
            if op == "acquire":
                outcomes = []
                for lm in (base, striped):
                    try:
                        outcomes.append(lm.acquire(txid, resource, mode))
                    except DeadlockError:
                        outcomes.append("deadlock")
                        lm.release_all(txid)
                assert outcomes[0] == outcomes[1]
            elif op == "timeout":
                base._drop_request(txid, resource)
                striped._drop_request(txid, resource)
            else:
                base.release_all(txid)
                striped.release_all(txid)
            assert striped.waits_for_edges() == base.waits_for_edges()
            for t in range(1, 5):
                assert striped.locks_held(t) == base.locks_held(t)
                for res in ("a", "b", "c"):
                    assert striped.mode_held(t, res) == base.mode_held(t, res)
        for counter in (
            "s_acquired",
            "x_acquired",
            "upgrades",
            "waits",
            "deadlocks",
        ):
            assert getattr(striped.stats, counter) == getattr(
                base.stats, counter
            ), counter

    @pytest.mark.parametrize("stripes", [2, 8])
    def test_cooperative_schedule_identical_across_stripe_counts(
        self, tmp_path, stripes
    ):
        """End-to-end determinism: the FIFO-wake + forced-deadlock session
        scenario under a CooperativeScheduler produces the *same scheduler
        log* and the *same lock acquisition-order trace* whether the lock
        manager has 1 stripe or many."""
        from repro.objects.database import Database
        from repro.objects.persistent import Persistent
        from repro.objects.schema import field as pfield
        from repro.sessions.scheduler import CooperativeScheduler

        class StripeEqSlot(Persistent):
            value = pfield(int, default=0)

        runs = []
        for label, n in (("a", 1), ("b", stripes)):
            db = Database.open(
                str(tmp_path / f"eq-{label}-{stripes}"),
                engine="mm",
                name=f"stripe-eq-{label}",
                lock_stripes=n,
            )
            try:
                with db.transaction():
                    p1 = db.pnew(StripeEqSlot).ptr
                    p2 = db.pnew(StripeEqSlot).ptr

                sched = CooperativeScheduler()
                sa = db.session("A")
                sb = db.session("B")
                sc = db.session("C")
                lm = db.storage.lock_manager
                lm.start_order_trace()

                def program(session, first, second, amount):
                    def body(txn):
                        h1 = session.deref(first)
                        h1.value = h1.value + amount
                        sched.yield_now()  # guarantee lock interleaving
                        h2 = session.deref(second)
                        h2.value = h2.value + amount

                    session.run(body)

                def reader(session):
                    def body(txn):
                        session.deref(p1).value
                        session.deref(p2).value

                    session.run(body)

                sched.spawn(lambda: program(sa, p1, p2, 1), "A", session=sa)
                sched.spawn(lambda: program(sb, p2, p1, 10), "B", session=sb)
                sched.spawn(lambda: reader(sc), "C", session=sc)
                sched.run()

                with db.transaction():
                    total = db.deref(p1).value + db.deref(p2).value
                assert total == 22  # both writers committed whole
                runs.append(
                    {
                        "log": list(sched.log),
                        "order": lm.stop_order_trace(),
                        "deadlocks": lm.stats.deadlocks,
                        "waits": lm.stats.waits,
                    }
                )
            finally:
                db.close()

        assert runs[0]["log"] == runs[1]["log"]
        assert runs[0]["order"] == runs[1]["order"]
        assert runs[0]["deadlocks"] == runs[1]["deadlocks"] >= 1
        assert runs[0]["waits"] == runs[1]["waits"]
