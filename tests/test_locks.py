"""Lock-manager tests: grants, conflicts, upgrades, deadlocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, LockError
from repro.storage.locks import LockManager, LockMode, LockRequestStatus


@pytest.fixture
def lm():
    return LockManager()


GRANTED = LockRequestStatus.GRANTED
WAIT = LockRequestStatus.WAIT


class TestBasicGrants:
    def test_s_lock_granted(self, lm):
        assert lm.acquire(1, "r", LockMode.S) is GRANTED
        assert lm.mode_held(1, "r") is LockMode.S

    def test_x_lock_granted(self, lm):
        assert lm.acquire(1, "r", LockMode.X) is GRANTED

    def test_shared_locks_compatible(self, lm):
        assert lm.acquire(1, "r", LockMode.S) is GRANTED
        assert lm.acquire(2, "r", LockMode.S) is GRANTED
        assert lm.holders_of("r") == {1, 2}

    def test_x_conflicts_with_s(self, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(2, "r", LockMode.X) is WAIT

    def test_s_conflicts_with_x(self, lm):
        lm.acquire(1, "r", LockMode.X)
        assert lm.acquire(2, "r", LockMode.S) is WAIT

    def test_reacquire_same_mode_is_noop(self, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(1, "r", LockMode.S) is GRANTED
        assert lm.stats.s_acquired == 1

    def test_x_holder_can_request_s(self, lm):
        lm.acquire(1, "r", LockMode.X)
        assert lm.acquire(1, "r", LockMode.S) is GRANTED
        assert lm.mode_held(1, "r") is LockMode.X  # not downgraded

    def test_distinct_resources_do_not_conflict(self, lm):
        assert lm.acquire(1, "a", LockMode.X) is GRANTED
        assert lm.acquire(2, "b", LockMode.X) is GRANTED


class TestUpgrade:
    def test_upgrade_s_to_x_when_sole_holder(self, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(1, "r", LockMode.X) is GRANTED
        assert lm.mode_held(1, "r") is LockMode.X
        assert lm.stats.upgrades == 1

    def test_upgrade_blocked_by_other_reader(self, lm):
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        assert lm.acquire(1, "r", LockMode.X) is WAIT


class TestRelease:
    def test_release_all_frees_resources(self, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(1, "b", LockMode.S)
        lm.release_all(1)
        assert lm.acquire(2, "a", LockMode.X) is GRANTED
        assert lm.locks_held(1) == frozenset()

    def test_release_grants_waiters(self, lm):
        lm.acquire(1, "r", LockMode.X)
        assert lm.acquire(2, "r", LockMode.S) is WAIT
        lm.release_all(1)  # grants queued requests eagerly
        assert lm.mode_held(2, "r") is LockMode.S
        assert lm.retry_waiters() == []  # nothing left queued

    def test_release_clears_waits_for_edges(self, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(2, "r", LockMode.S)
        lm.release_all(2)
        assert lm.waits_for_edges() == {}


class TestDeadlock:
    def test_two_party_deadlock_detected(self, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        assert lm.acquire(1, "b", LockMode.X) is WAIT
        with pytest.raises(DeadlockError) as excinfo:
            lm.acquire(2, "a", LockMode.X)
        assert excinfo.value.txid == 2
        assert lm.stats.deadlocks == 1

    def test_three_party_cycle_detected(self, lm):
        for txid, resource in ((1, "a"), (2, "b"), (3, "c")):
            lm.acquire(txid, resource, LockMode.X)
        assert lm.acquire(1, "b", LockMode.X) is WAIT
        assert lm.acquire(2, "c", LockMode.X) is WAIT
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", LockMode.X)

    def test_victim_can_proceed_after_release(self, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        lm.acquire(1, "b", LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", LockMode.X)
        lm.release_all(2)  # victim aborts; its release grants the survivor
        assert lm.mode_held(1, "b") is LockMode.X

    def test_no_false_deadlock_on_simple_wait(self, lm):
        lm.acquire(1, "r", LockMode.X)
        assert lm.acquire(2, "r", LockMode.X) is WAIT  # no cycle, no raise


class TestFairness:
    def test_new_reader_queues_behind_waiting_writer(self, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(2, "r", LockMode.X) is WAIT
        # Reader 3 must not starve the waiting writer.
        assert lm.acquire(3, "r", LockMode.S) is WAIT

    def test_acquire_or_raise_on_conflict(self, lm):
        lm.acquire(1, "r", LockMode.X)
        with pytest.raises(LockError):
            lm.acquire_or_raise(2, "r", LockMode.S)


class TestStats:
    def test_counts_accumulate(self, lm):
        lm.acquire(1, "a", LockMode.S)
        lm.acquire(1, "b", LockMode.X)
        lm.acquire(2, "b", LockMode.S)
        snapshot = lm.stats.snapshot()
        assert snapshot["s_acquired"] == 1
        assert snapshot["x_acquired"] == 1
        assert snapshot["waits"] == 1

    def test_reset(self, lm):
        lm.acquire(1, "a", LockMode.S)
        lm.stats.reset()
        assert lm.stats.s_acquired == 0


class TestMultiResourceWaits:
    """Regression: a grant on one resource must not drop a transaction's
    waits-for edges on the *other* resources it is still queued for."""

    def test_edges_survive_partial_grant(self, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(3, "b", LockMode.X)
        # T2 queues behind both holders.
        assert lm.acquire(2, "a", LockMode.S) is WAIT
        assert lm.acquire(2, "b", LockMode.S) is WAIT
        assert lm.waits_for_edges()[2] == {1, 3}
        # T1's release grants T2 on "a" — but T2 still waits on "b".
        lm.release_all(1)
        assert lm.mode_held(2, "a") is LockMode.S
        assert lm.waits_for_edges()[2] == {3}

    def test_deadlock_detected_through_surviving_edge(self, lm):
        """With the surviving edge, a cycle closed later is still caught."""
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(3, "b", LockMode.X)
        lm.acquire(2, "a", LockMode.S)
        lm.acquire(2, "b", LockMode.S)
        lm.release_all(1)  # T2 now holds "a", still waits on T3 for "b"
        # T3 requesting "a" (X) waits on T2 -> T2 -> T3 closes the cycle.
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", LockMode.X)
        assert lm.stats.deadlocks == 1


class TestFIFOProperty:
    """Hypothesis: grants per resource respect arrival order — no waiter is
    overtaken by an incompatible later arrival, and nobody starves."""

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),  # txid
                st.sampled_from(["a", "b", "c"]),  # resource
                st.sampled_from([LockMode.S, LockMode.X]),  # mode
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_fifo_grants_and_no_starvation(self, schedule):
        lm = LockManager()
        arrival: dict[str, list[int]] = {}
        active: set[int] = set()
        blocked: set[int] = set()

        for txid, resource, mode in schedule:
            if txid in blocked:
                continue  # a blocked transaction cannot issue more requests
            try:
                status = lm.acquire(txid, resource, mode)
            except DeadlockError:
                lm.release_all(txid)
                active.discard(txid)
                arrival = {
                    r: [t for t in q if t != txid] for r, q in arrival.items()
                }
                continue
            active.add(txid)
            if status is WAIT:
                blocked.add(txid)
                arrival.setdefault(resource, []).append(txid)
            # Invariant: immediately after any acquire, nothing grantable
            # is left queued (grants happen eagerly, in FIFO order).
            assert lm.retry_waiters() == []

        # Drain: release transactions in txid order; every release must
        # grant strictly per-queue-FIFO, and the table must fully empty —
        # no waiter starves once its blockers are gone.
        for txid in sorted(active):
            lm.release_all(txid)
            blocked.clear()  # grants may have unblocked anyone
        for txid in sorted(set(t for q in arrival.values() for t in q)):
            lm.release_all(txid)
        assert lm.waits_for_edges() == {}
