"""Lock-trace simulator tests (the E6 substrate)."""

import pytest

from repro.storage.locks import LockMode
from repro.workloads.locksim import (
    LockStep,
    LockTraceSimulator,
    hot_set_workload,
    trace_for_read,
    trace_for_read_with_triggers,
)


class TestTraces:
    def test_read_trace_is_single_s_lock(self):
        trace = trace_for_read(5)
        assert trace == [LockStep(("obj", 5), LockMode.S)]

    def test_trigger_trace_adds_x_locks(self):
        trace = trace_for_read_with_triggers(5, [501, 502], index_bucket=1)
        modes = [step.mode for step in trace]
        assert modes == [LockMode.S, LockMode.S, LockMode.X, LockMode.X]


class TestSimulator:
    def test_read_only_workload_never_waits(self):
        sim = LockTraceSimulator(
            hot_set_workload(4, triggers_per_object=0), n_clients=8, seed=1
        )
        result = sim.run(200)
        assert result.completed == 200
        assert result.aborted_deadlock == 0
        assert result.wait_steps == 0
        assert result.x_locks == 0

    def test_trigger_workload_creates_contention(self):
        sim = LockTraceSimulator(
            hot_set_workload(4, triggers_per_object=2), n_clients=8, seed=1
        )
        result = sim.run(200)
        assert result.completed + result.aborted_deadlock == 200
        assert result.x_locks > 0
        assert result.wait_steps > 0  # the paper's amplified waiting

    def test_deadlocks_occur_and_are_resolved(self):
        # Tiny hot set + many clients + several X locks per txn: cycles.
        sim = LockTraceSimulator(
            hot_set_workload(2, triggers_per_object=3, ops_per_txn=6),
            n_clients=12,
            seed=3,
        )
        result = sim.run(300)
        assert result.completed + result.aborted_deadlock == 300
        assert result.aborted_deadlock > 0
        assert result.completed > 0  # the system still makes progress

    def test_single_client_never_conflicts(self):
        sim = LockTraceSimulator(
            hot_set_workload(2, triggers_per_object=3), n_clients=1, seed=9
        )
        result = sim.run(50)
        assert result.completed == 50
        assert result.wait_steps == 0
        assert result.aborted_deadlock == 0

    def test_amplification_monotone_in_trigger_count(self):
        """More active triggers per object -> at least as much waiting."""
        fractions = []
        for triggers in (0, 1, 4):
            sim = LockTraceSimulator(
                hot_set_workload(4, triggers_per_object=triggers),
                n_clients=8,
                seed=5,
            )
            result = sim.run(300)
            fractions.append(result.wait_fraction)
        assert fractions[0] == 0.0
        assert fractions[1] > 0.0
        assert fractions[2] >= fractions[1] * 0.5  # noisy, but nonzero

    def test_deterministic_given_seed(self):
        runs = []
        for _ in range(2):
            sim = LockTraceSimulator(
                hot_set_workload(4, triggers_per_object=2), n_clients=6, seed=42
            )
            result = sim.run(100)
            runs.append((result.completed, result.aborted_deadlock, result.wait_steps))
        assert runs[0] == runs[1]
