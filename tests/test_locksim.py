"""Multi-session hot-set workload tests (the E6 substrate).

The workload drives the real engine — N sessions over one database under a
cooperative scheduler — so these tests double as end-to-end checks that
blocking locks, FIFO wakeups, and deadlock abort/retry compose with the
trigger machinery.
"""

from repro.workloads.locksim import HotObject, run_hot_set


class TestHotObject:
    def test_watch_fsm_flips_on_every_posting(self, mm_db):
        """relative(Ping, Pong) writes its TriggerState on each event."""
        db = mm_db
        with db.transaction():
            handle = db.pnew(HotObject)
            ptr = handle.ptr
            handle.Watch()
        stats = db.trigger_system.stats
        before = stats.snapshot()
        with db.transaction():
            handle = db.deref(ptr)
            handle.post_event("Ping")
            handle.post_event("Pong")
        diff = stats.diff(before)
        assert diff["state_writes"] == 2  # one per posting: arm, fire+re-arm
        assert diff["firings"] == 1

    def test_unwatched_posting_short_circuits(self, mm_db):
        db = mm_db
        with db.transaction():
            handle = db.pnew(HotObject)
            ptr = handle.ptr
        stats = db.trigger_system.stats
        before = stats.snapshot()
        with db.transaction():
            handle = db.deref(ptr)
            handle.post_event("Ping")
        diff = stats.diff(before)
        assert diff["skipped_no_triggers"] == 1
        assert diff["state_writes"] == 0


class TestWorkload:
    def test_read_only_workload_never_waits(self):
        result = run_hot_set(4, 0, n_sessions=6, transactions=60, seed=1)
        assert result.committed == 60
        assert result.x_locks == 0
        assert result.lock_waits == 0
        assert result.deadlock_aborts == 0
        assert result.state_writes == 0

    def test_trigger_workload_amplifies_into_writes_and_waits(self):
        result = run_hot_set(4, 2, n_sessions=6, transactions=60, seed=1)
        assert result.committed == 60  # retries recover every deadlock
        assert result.x_locks > 0
        assert result.state_writes > 0
        assert result.lock_waits > 0  # the paper's amplified waiting

    def test_deadlocks_occur_and_are_resolved(self):
        result = run_hot_set(
            2, 3, n_sessions=8, transactions=80, ops_per_txn=5, seed=3
        )
        assert result.committed == 80  # progress despite the storm
        assert result.deadlock_aborts > 0

    def test_single_session_never_conflicts(self):
        result = run_hot_set(2, 3, n_sessions=1, transactions=30, seed=9)
        assert result.committed == 30
        assert result.lock_waits == 0
        assert result.deadlock_aborts == 0
        assert result.state_writes > 0  # amplification without contention

    def test_amplification_monotone_in_trigger_count(self):
        """More active triggers per object -> more X locks, more waiting."""
        results = [
            run_hot_set(4, triggers, n_sessions=6, transactions=60, seed=5)
            for triggers in (0, 1, 4)
        ]
        assert results[0].wait_fraction == 0.0
        assert results[1].wait_fraction > 0.0
        assert results[0].x_locks == 0
        assert results[2].x_locks > results[1].x_locks
        assert results[2].state_writes > results[1].state_writes

    def test_deterministic_given_seed(self):
        runs = [
            run_hot_set(
                4, 2, n_sessions=5, transactions=40, seed=42
            ).key()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
