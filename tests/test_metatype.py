"""Metatype and type-registry tests."""

import pytest

from repro.errors import SchemaError, UnknownTypeError
from repro.objects.metatype import TypeRegistry, global_type_registry
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Vehicle(Persistent):
    wheels = field(int, default=4)


class Car(Vehicle):
    doors = field(int, default=4)


class Truck(Vehicle):
    payload = field(float, default=0.0)


class TestRegistry:
    def test_find_by_name(self):
        registry = global_type_registry()
        assert registry.find("Vehicle").pyclass is Vehicle

    def test_find_unknown_raises(self):
        with pytest.raises(UnknownTypeError):
            global_type_registry().find("NoSuchClass")

    def test_register_idempotent(self):
        registry = TypeRegistry()

        class Local(Persistent):
            pass

        first = registry.register(Local)
        second = registry.register(Local)
        assert first is second

    def test_subclasses_of(self):
        registry = global_type_registry()
        subs = {m.name for m in registry.subclasses_of(Vehicle.__metatype__)}
        assert {"Vehicle", "Car", "Truck"} <= subs

    def test_require_by_class_for_non_persistent(self):
        with pytest.raises(UnknownTypeError):
            global_type_registry().require_by_class(dict)

    def test_register_shim_resolves_via_find(self):
        registry = TypeRegistry()
        shim = object()
        registry.register_shim("Dynamic", shim)
        assert registry.find("Dynamic") is shim


class TestMetatype:
    def test_base_metatypes_nearest_first(self):
        registry = global_type_registry()
        bases = Car.__metatype__.base_metatypes(registry)
        assert bases[0].name == "Vehicle"

    def test_is_subtype_of(self):
        assert Car.__metatype__.is_subtype_of(Vehicle.__metatype__)
        assert not Vehicle.__metatype__.is_subtype_of(Car.__metatype__)

    def test_trigger_info_out_of_range(self):
        with pytest.raises(SchemaError):
            Vehicle.__metatype__.trigger_info(0)

    def test_trigger_by_name_missing(self):
        with pytest.raises(SchemaError):
            Vehicle.__metatype__.trigger_by_name("Nope")

    def test_has_active_facilities(self):
        assert not Vehicle.__metatype__.has_active_facilities()
        from repro.workloads.credit_card import CredCard

        assert CredCard.__metatype__.has_active_facilities()

    def test_repr(self):
        assert "Vehicle" in repr(Vehicle.__metatype__)
