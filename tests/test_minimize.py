"""Minimization and mask-pruning tests, including equivalence properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.compile import compile_expression
from repro.events.minimize import minimize_fsm, prune_irrelevant_masks

DECLS = ["A", "B", "C"]


def drive(fsm, stream, mask_values=None):
    values = mask_values or {}
    evaluate = lambda name: values.get(name, False)
    state = fsm.start
    state, _ = fsm.quiesce(state, evaluate)
    hits = []
    for symbol in stream:
        result = fsm.advance(state, symbol, evaluate)
        state = result.state
        hits.append(result.accepted)
    return hits


class TestMinimization:
    def test_minimized_never_larger(self):
        for text in ["A, B", "(A || B), (A || B)", "A, *B, C", "+(A, B), C"]:
            raw = compile_expression(text, DECLS, minimize=False).fsm
            small = compile_expression(text, DECLS, minimize=True).fsm
            assert len(small) <= len(raw)

    def test_redundant_union_collapses(self):
        fsm = compile_expression("A || A || A", DECLS).fsm
        reference = compile_expression("A", DECLS).fsm
        assert len(fsm) == len(reference)

    def test_minimize_is_idempotent(self):
        fsm = compile_expression("A, *B, C", DECLS).fsm
        again = minimize_fsm(fsm)
        assert len(again) == len(fsm)

    def test_anchored_minimization_keeps_dead_semantics(self):
        fsm = compile_expression("^(A, B)", DECLS, minimize=True).fsm
        assert drive(fsm, ["C", "A", "B"]) == [False, False, False]
        assert drive(fsm, ["A", "B"]) == [False, True]

    def test_mask_states_never_merge_with_plain(self):
        fsm = compile_expression("(A & m), B", DECLS).fsm
        for state in fsm.states:
            if state.masks:
                twins = [
                    other
                    for other in fsm.states
                    if other is not state
                    and other.transitions == state.transitions
                    and other.accept == state.accept
                    and not other.masks
                ]
                # any structural twin without masks must have been kept
                # separate precisely because behaviour differs.
                assert all(twin.masks != state.masks for twin in twins)


class TestMaskPruning:
    def test_irrelevant_mask_dropped(self):
        # relative(...) produces a state that re-evaluates the mask although
        # both outcomes coincide — pruning removes it (Figure 1 shape).
        machine = compile_expression(
            "relative((A & m), B)", DECLS, known_masks=["m"]
        ).fsm
        assert len(machine.mask_states()) == 1

    def test_prune_noop_returns_same_object(self):
        fsm = compile_expression("A & m", DECLS, minimize=False).fsm
        pruned = prune_irrelevant_masks(fsm)
        # The only mask state has diverging outcomes: nothing to prune.
        again = prune_irrelevant_masks(pruned)
        assert again is pruned

    def test_pruned_machine_behaves_identically(self):
        text = "relative((A & m), B)"
        pruned = compile_expression(text, DECLS).fsm
        raw = compile_expression(text, DECLS, minimize=False).fsm
        streams = [
            ["A", "B"],
            ["A", "A", "B"],
            ["C", "A", "C", "B"],
            ["B", "A", "B"],
        ]
        for stream in streams:
            for hot in (True, False):
                assert drive(raw, stream, {"m": hot}) == drive(
                    pruned, stream, {"m": hot}
                )


_EXPRS = st.sampled_from(
    [
        "A",
        "A, B",
        "A || B",
        "A, B, C",
        "(A || B), C",
        "A, *B, C",
        "+A, B",
        "+(A || B), C",
        "(A, B) || (B, C)",
        "A, *(B || C), A",
        "relative(A, B)",
        "relative((A, B), C)",
    ]
)
_STREAMS = st.lists(st.sampled_from(DECLS), min_size=0, max_size=40)


@settings(max_examples=150, deadline=None)
@given(text=_EXPRS, stream=_STREAMS)
def test_minimized_equals_unminimized(text, stream):
    small = compile_expression(text, DECLS, minimize=True).fsm
    big = compile_expression(text, DECLS, minimize=False).fsm
    assert drive(small, stream) == drive(big, stream)


@settings(max_examples=100, deadline=None)
@given(text=_EXPRS, stream=_STREAMS, anchored=st.booleans())
def test_anchored_flag_consistency(text, stream, anchored):
    if anchored:
        text_full = "^(" + text + ")"
    else:
        text_full = text
    small = compile_expression(text_full, DECLS, minimize=True).fsm
    big = compile_expression(text_full, DECLS, minimize=False).fsm
    assert drive(small, stream) == drive(big, stream)
