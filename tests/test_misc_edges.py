"""Edge cases across modules that the focused suites don't reach."""

import pytest

from repro.core.trigger_def import CouplingMode
from repro.errors import (
    DatabaseError,
    NoActiveTransactionError,
    TriggerDeclarationError,
)
from repro.events.compile import compile_expression
from repro.events.fsm import DEAD, EventDecl, FSMError
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.storage import open_storage
from repro.storage.interface import StorageStats


class Thing(Persistent):
    v = field(int, default=0)


class TestStorageFactory:
    def test_open_storage_unknown_engine(self, tmp_path):
        with pytest.raises(ValueError, match="unknown storage engine"):
            open_storage(str(tmp_path / "x"), engine="tape")

    def test_stats_snapshot_and_reset(self):
        stats = StorageStats()
        stats.reads = 5
        assert stats.snapshot()["reads"] == 5
        stats.reset()
        assert stats.snapshot()["reads"] == 0

    def test_active_transactions(self, mm_db):
        assert mm_db.storage.active_transactions() == frozenset()
        txn = mm_db.txn_manager.begin()
        assert mm_db.storage.active_transactions() == {txn.txid}
        mm_db.txn_manager.abort(txn)


class TestCouplingParse:
    def test_deferred_alias(self):
        assert CouplingMode.parse("deferred") is CouplingMode.END

    def test_enum_passthrough(self):
        assert CouplingMode.parse(CouplingMode.DEPENDENT) is CouplingMode.DEPENDENT

    def test_unknown_rejected(self):
        with pytest.raises(TriggerDeclarationError):
            CouplingMode.parse("eventually")


class TestEventDeclStr:
    def test_str_is_symbol(self):
        assert str(EventDecl("after", "Buy")) == "after Buy"
        assert str(EventDecl.parse("BigBuy")) == "BigBuy"


class TestFsmEdges:
    def test_dead_state_has_no_descriptor(self):
        fsm = compile_expression("^A", ["A", "B"]).fsm
        with pytest.raises(FSMError):
            fsm.state(DEAD)

    def test_quiesce_from_dead_is_noop(self):
        fsm = compile_expression("^A", ["A", "B"]).fsm
        state, steps = fsm.quiesce(DEAD, lambda m: True)
        assert state == DEAD
        assert steps == 0

    def test_accept_and_mask_state_listings(self):
        fsm = compile_expression("A & m, B", ["A", "B"]).fsm
        assert fsm.accept_states()
        assert fsm.mask_states()


class TestDatabaseEdges:
    def test_named_unknown_raises(self):
        with pytest.raises(DatabaseError):
            Database.named("never-opened")

    def test_close_is_idempotent(self, db_path):
        db = Database.open(db_path, engine="mm")
        db.close()
        db.close()  # no error

    def test_simulate_crash_then_close(self, db_path):
        db = Database.open(db_path, engine="disk")
        db.simulate_crash()
        db.close()  # no error after crash

    def test_catalog_get_requires_txn(self, mm_db):
        with pytest.raises(NoActiveTransactionError):
            mm_db.catalog_get("anything")

    def test_handle_equality_and_hash(self, mm_db):
        with mm_db.transaction():
            a = mm_db.pnew(Thing)
            same = mm_db.deref(a.ptr)
            other = mm_db.pnew(Thing)
            assert a == same
            assert a != other
            assert len({a, same, other}) == 2

    def test_handle_repr(self, mm_db):
        with mm_db.transaction():
            handle = mm_db.pnew(Thing, v=3)
            assert "Thing" in repr(handle)

    def test_txn_repr_and_attachment(self, mm_db):
        txn = mm_db.txn_manager.begin()
        assert "Transaction" in repr(txn)
        bucket = txn.attachment("k", list)
        bucket.append(1)
        assert txn.attachment("k", list) == [1]
        mm_db.txn_manager.abort(txn)


class TestDeclarationEdges:
    def test_event_without_method_rejected(self):
        with pytest.raises(TriggerDeclarationError, match="no\\s+method"):

            class Ghost(Persistent):
                __events__ = ["after vanish"]

    def test_duplicate_event_rejected(self):
        with pytest.raises(TriggerDeclarationError, match="twice"):

            class Doubled(Persistent):
                __events__ = ["Ping", "Ping"]

    def test_non_trigger_in_triggers_rejected(self):
        with pytest.raises(TriggerDeclarationError, match="trigger"):

            class Wrong(Persistent):
                __events__ = ["Ping"]
                __triggers__ = ["not a TriggerDecl"]

    def test_action_method_missing_raises_at_fire(self, mm_db):
        from repro.core.declarations import trigger

        class Misnamed(Persistent):
            __events__ = ["Go"]
            __triggers__ = [trigger("T", "Go", action="does_not_exist")]

        with mm_db.transaction():
            handle = mm_db.pnew(Misnamed)
            handle.T()
            with pytest.raises(TriggerDeclarationError, match="does_not_exist"):
                handle.post_event("Go")
