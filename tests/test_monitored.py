"""Local-rule / monitored-class tests (Section 8 extension)."""

import pytest

from repro.core.declarations import trigger
from repro.core.monitored import LocalTriggerSystem, Monitored
from repro.errors import (
    TriggerArgumentError,
    TriggerError,
    TriggerNotActiveError,
    UnknownEventError,
)

ALARMS: list[float] = []


class Sensor(Monitored):
    __events__ = ["after update", "Spike"]
    __masks__ = {"hot": lambda self: self.reading > 90}
    __triggers__ = [
        trigger(
            "Alarm",
            "after update & hot",
            action=lambda self, ctx: ALARMS.append(self.reading),
            perpetual=True,
        ),
        trigger(
            "SpikeOnce",
            "Spike",
            action=lambda self, ctx: ALARMS.append(-1.0),
        ),
        trigger(
            "Deferred",
            "after update",
            action=lambda self, ctx: ALARMS.append(-2.0),
            coupling="end",
            perpetual=True,
        ),
        trigger(
            "Detached",
            "after update",
            action=lambda self, ctx: None,
            coupling="dependent",
        ),
    ]

    def __init__(self):
        self.reading = 0.0

    def update(self, value):
        self.reading = value


@pytest.fixture(autouse=True)
def _clear():
    ALARMS.clear()
    yield
    ALARMS.clear()


class TestLocalRules:
    def test_monitor_and_fire(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        handle.Alarm()
        handle.update(50.0)
        handle.update(95.0)
        assert ALARMS == [95.0]

    def test_unmonitored_instance_pays_nothing(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        sensor.update(200.0)  # direct call: no proxy, no posting
        assert ALARMS == []
        assert system.stats.events_posted == 0

    def test_once_only_local_rule(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        handle.SpikeOnce()
        handle.post_event("Spike")
        handle.post_event("Spike")
        assert ALARMS == [-1.0]
        assert system.active_count(sensor) == 0

    def test_deactivate(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        local_id = handle.Alarm()
        system.deactivate(local_id)
        handle.update(99.0)
        assert ALARMS == []
        with pytest.raises(TriggerNotActiveError):
            system.deactivate(local_id)

    def test_wrong_arity_raises(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        info = Sensor.__metatype__.trigger_by_name("Alarm")
        with pytest.raises(TriggerArgumentError):
            system.activate(sensor, info, "extra")

    def test_detached_modes_rejected(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        info = Sensor.__metatype__.trigger_by_name("Detached")
        with pytest.raises(TriggerError, match="local rules"):
            system.activate(sensor, info)

    def test_unknown_user_event_raises(self):
        system = LocalTriggerSystem()
        handle = system.monitor(Sensor())
        with pytest.raises(UnknownEventError):
            handle.post_event("Nope")

    def test_plain_object_cannot_be_monitored(self):
        system = LocalTriggerSystem()
        with pytest.raises(TriggerError):
            system.monitor(object())

    def test_no_storage_cost(self):
        """Local rules never touch a storage manager — zero write locks."""
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        handle.Alarm()
        for v in (95.0, 99.0, 101.0):
            handle.update(v)
        assert system.stats.fsm_advances == 3
        assert system.stats.state_writes == 0  # the whole point

    def test_end_coupling_queues_until_drain(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        handle.Deferred()
        handle.update(10.0)
        assert ALARMS == []
        system.drain_end_list()
        assert ALARMS == [-2.0]

    def test_clear_deallocates_everything(self):
        system = LocalTriggerSystem()
        sensor = Sensor()
        handle = system.monitor(sensor)
        handle.Alarm()
        system.clear()
        assert system.active_count() == 0
        handle.update(99.0)
        assert ALARMS == []


class TestDatabaseAttached:
    def test_local_states_deallocated_at_end_of_transaction(self, mm_db):
        db = mm_db
        system = LocalTriggerSystem(db)
        sensor = Sensor()
        handle = system.monitor(sensor)
        with db.transaction():
            handle.Alarm()
            handle.update(95.0)
            assert ALARMS == [95.0]
            assert system.active_count() == 1
        # End of transaction: local data structures deallocated.
        assert system.active_count() == 0

    def test_end_list_drained_at_commit(self, mm_db):
        db = mm_db
        system = LocalTriggerSystem(db)
        sensor = Sensor()
        handle = system.monitor(sensor)
        with db.transaction():
            handle.Deferred()
            handle.update(1.0)
            assert ALARMS == []
        assert ALARMS == [-2.0]

    def test_cleared_on_abort(self, mm_db):
        from repro.errors import TransactionAbort

        db = mm_db
        system = LocalTriggerSystem(db)
        sensor = Sensor()
        handle = system.monitor(sensor)
        with db.transaction():
            handle.Deferred()
            handle.update(1.0)
            raise TransactionAbort()
        assert ALARMS == []
        assert system.active_count() == 0
