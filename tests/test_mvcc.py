"""The versioned TriggerState scheme (DESIGN.md §15) and its satellites.

Covers:

* the advance buffer: zero X locks / zero in-place state writes for
  posting transactions, read-your-writes visibility, abort discards;
* the version chain: lazy load, publish-after-commit, immutability;
* commit-time merge: first-committer fast path, lost-update detection,
  both conflict policies (deterministic replay / abort-and-retry);
* cross-scheme equivalence: under any cooperative interleaving, each
  scheme's final committed state equals a serial replay of the same
  transactions in its observed commit order (hypothesis), and with
  transaction-boundary-only yields MVCC and 2PL agree *directly*;
* the `TriggerState.decode` field validation satellite;
* the `LockStats` snapshot/reset synchronization satellite.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    DatabaseError,
    TriggerError,
    TriggerStateConflictError,
)
from repro.core.trigger_state import TriggerState
from repro.objects.database import Database
from repro.objects.oid import PersistentPtr
from repro.sessions.scheduler import CooperativeScheduler
from repro.storage.locks import LockManager, LockMode, LockStats
from repro.workloads.locksim import HotObject

_ids = iter(range(10_000))


def _open(engine="mm", path=None, **kwargs):
    return Database.open(
        path, engine=engine, name=f"mvcc-{next(_ids)}", **kwargs
    )


def _setup_watched(db, n_triggers=1):
    with db.transaction():
        handle = db.pnew(HotObject)
        for _ in range(n_triggers):
            handle.Watch()
        return handle.ptr


def _statenums(db, ptr):
    with db.transaction():
        return [s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)]


# ---------------------------------------------------------------------------
# Opening / configuration
# ---------------------------------------------------------------------------


def test_open_rejects_unknown_scheme_and_policy(tmp_path):
    with pytest.raises(DatabaseError, match="trigger_cc"):
        Database.open(None, engine="mm", name="bad-cc", trigger_cc="occ")
    with pytest.raises(DatabaseError, match="mvcc_conflict"):
        Database.open(
            None, engine="mm", name="bad-pol",
            trigger_cc="mvcc", mvcc_conflict="merge",
        )
    # Neither failed open may leak its name registration.
    db = Database.open(None, engine="mm", name="bad-cc", trigger_cc="mvcc")
    db.close()


def test_2pl_baseline_has_no_version_manager():
    db = _open()
    try:
        assert db.trigger_cc == "2pl"
        assert db.trigger_system.versions is None
    finally:
        db.close()


# ---------------------------------------------------------------------------
# The advance buffer
# ---------------------------------------------------------------------------


def test_posting_takes_no_x_locks_and_writes_no_state():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        lock_before = db.storage.lock_manager.stats.snapshot()
        with db.transaction():
            h = db.deref(ptr)
            h.post_event("Ping")
            h.post_event("Pong")
        lock_after = db.storage.lock_manager.stats.snapshot()
        assert lock_after["x_acquired"] == lock_before["x_acquired"]
        assert lock_after["upgrades"] == lock_before["upgrades"]
        assert db.trigger_system.stats.state_writes == 0
        mvcc = db.trigger_system.versions.stats
        assert mvcc.buffered_advances == 2
        assert mvcc.clean_merges == 1
        assert mvcc.conflicts == 0
    finally:
        db.close()


def test_buffered_advance_is_visible_to_own_transaction():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            h = db.deref(ptr)
            before = [
                s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)
            ]
            h.post_event("Ping")
            during = [
                s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)
            ]
        assert during != before  # read-your-writes through the buffer
    finally:
        db.close()


def test_abort_discards_the_buffer():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        committed = _statenums(db, ptr)
        txn = db.txn_manager.begin()
        h = db.deref(ptr)
        h.post_event("Ping")
        db.txn_manager.abort(txn)
        assert _statenums(db, ptr) == committed
        assert db.trigger_system.versions.stats.merges == 0
    finally:
        db.close()


def test_committed_states_match_2pl_semantics():
    final = {}
    for cc in ("2pl", "mvcc"):
        db = _open(trigger_cc=cc)
        try:
            ptr = _setup_watched(db, n_triggers=2)
            for _ in range(3):
                with db.transaction():
                    h = db.deref(ptr)
                    h.post_event("Ping")
                    h.post_event("Pong")
            final[cc] = _statenums(db, ptr)
        finally:
            db.close()
    assert final["mvcc"] == final["2pl"]


def test_fresh_activation_and_advance_in_one_transaction():
    db = _open(trigger_cc="mvcc")
    try:
        with db.transaction():
            h = db.pnew(HotObject)
            h.Watch()
            h.post_event("Ping")  # advances the machine it just activated
            ptr = h.ptr
        states = _statenums(db, ptr)
        assert len(states) == 1
        # The Ping survived the commit of the fresh entry.
        db2 = _open(trigger_cc="2pl")
        try:
            p2 = _setup_watched(db2)
            with db2.transaction():
                db2.deref(p2).post_event("Ping")
            assert states == _statenums(db2, p2)
        finally:
            db2.close()
    finally:
        db.close()


def test_deactivate_with_buffered_advances_drops_entry_and_chain():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")  # materialize the chain
        versions = db.trigger_system.versions
        assert versions.chain_lengths()
        with db.transaction():
            h = db.deref(ptr)
            h.post_event("Ping")
            (tid, _, _), = db.trigger_system.active_triggers(ptr)
            db.trigger_system.deactivate(tid)
        assert versions.chain_lengths() == {}
        assert _statenums(db, ptr) == []
    finally:
        db.close()


def test_mvcc_durability_across_reopen(tmp_path):
    path = str(tmp_path / "mvccdisk")
    db = _open(engine="disk", path=path, trigger_cc="mvcc")
    ptr = None
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")
        expected = _statenums(db, ptr)
    finally:
        db.close()
    db = _open(engine="disk", path=path, trigger_cc="mvcc")
    try:
        assert _statenums(db, PersistentPtr(db.name, ptr.rid)) == expected
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Commit-time merge: conflicts
# ---------------------------------------------------------------------------


def _conflicting_pair(db, ptr, scheduler, *, retries=0):
    """Two cooperative sessions that both buffer against the same base
    version before either commits — a guaranteed lost update.

    *retries* is the CC_CONFLICT retry budget (``session.run``'s
    ``retries=`` keyword only overrides the deadlock budget).
    """
    from repro.faults.retry import DEFAULT_UNIFIED_RETRY, RetryClass

    policy = DEFAULT_UNIFIED_RETRY.with_budget(RetryClass.CC_CONFLICT, retries)
    outcomes = []

    def make(idx, session):
        def program():
            def body(txn):
                db_h = session.deref(ptr)
                db_h.post_event("Ping")
                scheduler.yield_now()  # both buffer before either commits
                db_h.post_event("Pong")

            try:
                session.run(body, policy=policy)
                outcomes.append((idx, "committed"))
            except TriggerStateConflictError:
                outcomes.append((idx, "conflict"))
            finally:
                session.close()

        return program

    for i in range(2):
        session = db.session(f"racer-{i}")
        scheduler.spawn(make(i, session), name=f"racer-{i}", session=session)
    scheduler.run()
    return outcomes


def test_conflict_policy_replay_merges_both_transactions():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler)
        assert sorted(outcomes) == [(0, "committed"), (1, "committed")]
        mvcc = db.trigger_system.versions.stats
        assert mvcc.conflicts >= 1
        assert mvcc.replays == mvcc.conflicts
        assert mvcc.conflict_aborts == 0
        # Serial oracle: 4 events in commit order on a fresh 2PL database.
        db2 = _open()
        try:
            p2 = _setup_watched(db2)
            for _ in range(2):
                with db2.transaction():
                    h = db2.deref(p2)
                    h.post_event("Ping")
                    h.post_event("Pong")
            assert _statenums(db, ptr) == _statenums(db2, p2)
        finally:
            db2.close()
    finally:
        db.close()


def test_conflict_policy_abort_raises_and_retry_succeeds():
    db = _open(trigger_cc="mvcc", mvcc_conflict="abort")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler, retries=5)
        # The loser aborted, retried through session.run, and committed.
        assert sorted(outcomes) == [(0, "committed"), (1, "committed")]
        mvcc = db.trigger_system.versions.stats
        assert mvcc.conflict_aborts >= 1
        assert mvcc.replays == 0
        assert db.session_stats.conflict_retries >= 1
    finally:
        db.close()


def test_conflict_abort_without_retry_budget_propagates():
    db = _open(trigger_cc="mvcc", mvcc_conflict="abort")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler, retries=0)
        assert (0, "committed") in outcomes or (1, "committed") in outcomes
        assert any(kind == "conflict" for _, kind in outcomes)
        assert db.session_stats.retry_exhausted >= 1
        # The exhausted victim must not have been counted as a retry.
        assert db.session_stats.conflict_retries == 0
    finally:
        db.close()


def test_version_chain_grows_one_head_per_publishing_commit():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        versions = db.trigger_system.versions
        for expected in (2, 3, 4):  # activation head + one per commit
            with db.transaction():
                db.deref(ptr).post_event("Ping")
            (length,) = versions.chain_lengths().values()
            assert length == expected
    finally:
        db.close()


# ---------------------------------------------------------------------------
# E6 in miniature: the §6 pathology and its absence under MVCC
# ---------------------------------------------------------------------------


def test_hot_set_mvcc_zero_deadlocks_zero_x_locks():
    from repro.workloads.locksim import run_hot_set

    result = run_hot_set(
        4, 1, n_sessions=8, transactions=40, trigger_cc="mvcc"
    )
    assert result.committed == 40
    assert result.x_locks == 0
    assert result.lock_waits == 0
    assert result.deadlock_aborts == 0
    assert result.state_writes == 0
    assert result.buffered_advances > 0
    assert result.merges > 0

    baseline = run_hot_set(4, 1, n_sessions=8, transactions=40)
    assert baseline.x_locks > 0 and baseline.lock_waits > 0


# ---------------------------------------------------------------------------
# Cross-scheme equivalence (hypothesis)
# ---------------------------------------------------------------------------

_EVENTS = st.lists(st.sampled_from(["Ping", "Pong"]), min_size=1, max_size=3)
_SESSION_SCRIPT = st.lists(_EVENTS, min_size=1, max_size=3)
_SCRIPT = st.lists(_SESSION_SCRIPT, min_size=2, max_size=3)


def _run_script(script, trigger_cc):
    """Run one transaction per event-list per session under a cooperative
    scheduler; returns (final statenums, transactions in commit order)."""
    db = _open(trigger_cc=trigger_cc)
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        commit_order = []

        def make(idx, txns):
            session = db.session(f"s{idx}")

            def program():
                for t, events in enumerate(txns):

                    def body(txn, events=events):
                        h = session.deref(ptr)
                        for ev in events:
                            h.post_event(ev)
                            scheduler.yield_now()

                    session.run(body, retries=50)
                    # No yield between the commit inside run() and this
                    # append, so the log is the commit completion order.
                    commit_order.append((idx, t))
                    scheduler.yield_now()
                session.close()

            return program

        for idx, txns in enumerate(script):
            scheduler.spawn(make(idx, txns), name=f"s{idx}")
        scheduler.run()
        return _statenums(db, ptr), commit_order
    finally:
        db.close()


def _serial_oracle(script, commit_order):
    """The same transactions applied serially, in observed commit order."""
    db = _open()  # plain 2PL, single session — trivially serial
    try:
        ptr = _setup_watched(db)
        for idx, t in commit_order:
            with db.transaction():
                h = db.deref(ptr)
                for ev in script[idx][t]:
                    h.post_event(ev)
        return _statenums(db, ptr)
    finally:
        db.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_both_schemes_serialize_under_any_interleaving(script):
    for cc in ("mvcc", "2pl"):
        final, commit_order = _run_script(script, cc)
        assert sorted(commit_order) == [
            (idx, t) for idx in range(len(script))
            for t in range(len(script[idx]))
        ]
        assert final == _serial_oracle(script, commit_order), (
            f"{cc}: final state diverges from its own commit-order serial "
            f"replay (order {commit_order})"
        )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_schemes_agree_directly_with_txn_boundary_yields(script):
    """With no yields inside transaction bodies both schemes see the same
    interleaving, so the committed states must be *identical*."""

    def run(trigger_cc):
        db = _open(trigger_cc=trigger_cc)
        try:
            ptr = _setup_watched(db)
            scheduler = CooperativeScheduler()

            def make(idx, txns):
                session = db.session(f"s{idx}")

                def program():
                    for events in txns:

                        def body(txn, events=events):
                            h = session.deref(ptr)
                            for ev in events:
                                h.post_event(ev)

                        session.run(body, retries=50)
                        scheduler.yield_now()
                    session.close()

                return program

            for idx, txns in enumerate(script):
                scheduler.spawn(make(idx, txns), name=f"s{idx}")
            scheduler.run()
            return _statenums(db, ptr)
        finally:
            db.close()

    assert run("mvcc") == run("2pl")


# ---------------------------------------------------------------------------
# Satellite: TriggerState.decode field validation
# ---------------------------------------------------------------------------


def _encoded_state(**overrides):
    from repro.objects.serialize import encode_value

    payload = {
        "triggernum": 0,
        "trigobj": PersistentPtr("db", 7),
        "statenum": 1,
        "trigobjtype": "HotObject",
        "params": {},
    }
    payload.update(overrides)
    out = bytearray()
    encode_value(payload, out)
    return bytes(out)


class TestDecodeValidation:
    def test_roundtrip_still_works(self):
        decoded = TriggerState.decode(_encoded_state())
        assert decoded.statenum == 1
        assert decoded.trigobjtype == "HotObject"

    @pytest.mark.parametrize(
        "field_name, bad",
        [
            ("statenum", "one"),
            ("statenum", True),  # bool is an int subclass: still corrupt
            ("triggernum", 1.5),
            ("trigobjtype", 42),
            ("trigobj", "not-a-pointer"),
            ("params", [1, 2]),
        ],
    )
    def test_wrong_field_type_names_the_field(self, field_name, bad):
        with pytest.raises(TriggerError, match=field_name):
            TriggerState.decode(_encoded_state(**{field_name: bad}))

    def test_non_mapping_payload_rejected(self):
        from repro.objects.serialize import encode_value

        out = bytearray()
        encode_value([1, 2, 3], out)
        with pytest.raises(TriggerError, match="mapping"):
            TriggerState.decode(bytes(out))

    def test_verify_integrity_reports_corrupt_record_instead_of_crashing(self):
        db = _open()
        try:
            ptr = _setup_watched(db)
            with db.transaction() as txn:
                (state_rid,) = db.trigger_system.index.lookup(txn, ptr.rid)
                db.storage.write(
                    txn.txid, state_rid, _encoded_state(statenum="broken")
                )
            with db.transaction():
                problems = db.trigger_system.verify_integrity()
            assert any("statenum" in p for p in problems)
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Satellite: LockStats snapshot/reset synchronization
# ---------------------------------------------------------------------------


class TestLockStatsSynchronization:
    N_THREADS = 8
    ITERATIONS = 50

    def test_exactly_once_counts_under_threads(self):
        """8 threads do S-then-upgrade-to-X on private resources; every
        counter must land exactly once per acquisition (the PR-7
        ``FaultInjector.hits`` discipline applied to LockStats)."""
        manager = LockManager()
        manager.blocking = True
        start = threading.Barrier(self.N_THREADS)
        torn: list[dict] = []
        stop = threading.Event()

        def snapshotter():
            # Concurrent observer: under the shared mutex a snapshot can
            # never see x_acquired without its paired upgrades increment.
            while not stop.is_set():
                snap = manager.stats.snapshot()
                if snap["upgrades"] != snap["x_acquired"]:
                    torn.append(snap)

        def worker(tid):
            start.wait()
            for i in range(self.ITERATIONS):
                resource = f"r-{tid}-{i}"
                txid = tid * 10_000 + i
                manager.lock(txid, resource, LockMode.S)
                manager.lock(txid, resource, LockMode.X)  # upgrade
                manager.release_all(txid)

        observer = threading.Thread(target=snapshotter)
        observer.start()
        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        observer.join()

        total = self.N_THREADS * self.ITERATIONS
        snap = manager.stats.snapshot()
        assert snap["s_acquired"] == total
        assert snap["x_acquired"] == total
        assert snap["upgrades"] == total
        assert torn == [], f"torn snapshot(s) observed: {torn[:3]}"

    def test_reset_is_atomic_against_increments(self):
        manager = LockManager()
        manager.blocking = True
        start = threading.Barrier(2)
        done = threading.Event()

        def worker():
            start.wait()
            for i in range(500):
                txid = 1_000 + i
                manager.lock(txid, f"rr-{i}", LockMode.S)
                manager.lock(txid, f"rr-{i}", LockMode.X)
                manager.release_all(txid)
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        start.wait()
        while not done.is_set():
            manager.stats.reset()
            snap = manager.stats.snapshot()
            # snapshot and the paired x/upgrade increments share the
            # manager mutex, so the two counters can never be seen apart.
            assert snap["x_acquired"] == snap["upgrades"]
        t.join()

    def test_standalone_stats_have_their_own_lock(self):
        stats = LockStats()
        stats.s_acquired = 3
        assert stats.snapshot()["s_acquired"] == 3
        stats.reset()
        assert stats.snapshot()["s_acquired"] == 0


# ---------------------------------------------------------------------------
# Crash matrix under MVCC (quick subsets; full matrices in
# tests/test_crash_matrix.py behind the crash_matrix marker)
# ---------------------------------------------------------------------------


def test_mvcc_crash_quick_subset_mm(tmp_path):
    from repro.faults.harness import explore

    result = explore(
        str(tmp_path / "mvcc-mm"), engine="mm", limit=10, trigger_cc="mvcc"
    )
    assert len(result.explored) >= 10
    assert {"wal", "checkpoint"} <= result.families_explored


def test_mvcc_crash_quick_subset_disk(tmp_path):
    from repro.faults.harness import explore

    result = explore(
        str(tmp_path / "mvcc-disk"), engine="disk", limit=12, trigger_cc="mvcc"
    )
    assert len(result.explored) >= 12
    assert {"wal", "page", "txn"} <= result.families_explored
