"""The versioned TriggerState scheme (DESIGN.md §15) and its satellites.

Covers:

* the advance buffer: zero X locks / zero in-place state writes for
  posting transactions, read-your-writes visibility, abort discards;
* the version chain: lazy load, publish-after-commit, immutability;
* commit-time merge: first-committer fast path, lost-update detection,
  both conflict policies (deterministic replay / abort-and-retry);
* cross-scheme equivalence: under any cooperative interleaving, each
  scheme's final committed state equals a serial replay of the same
  transactions in its observed commit order (hypothesis), and with
  transaction-boundary-only yields MVCC and 2PL agree *directly*;
* the `TriggerState.decode` field validation satellite;
* the `LockStats` snapshot/reset synchronization satellite;
* the review fixes: failed merges roll back *inside* the commit mutex,
  replay uses posting-time mask outcomes, and `MvccStats` increments are
  exactly-once under real threads.
"""

from __future__ import annotations

import threading
import types

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.declarations import trigger
from repro.core.versioned import MvccStats
from repro.errors import (
    DatabaseError,
    StorageError,
    TriggerError,
    TriggerStateConflictError,
)
from repro.core.trigger_state import TriggerState
from repro.objects.database import Database
from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.sessions.scheduler import CooperativeScheduler
from repro.storage.locks import LockManager, LockMode, LockStats
from repro.workloads.locksim import HotObject


def _noop_action(self, ctx) -> None:
    pass


class GatedHot(Persistent):
    """``Guard`` arms on ``Trip & hot`` — the mask outcome decides whether
    the machine leaves its start state, so posting-time vs commit-time
    mask evaluation is observable in the committed statenum."""

    temp = field(float, default=0.0)

    __events__ = ["Trip", "Reset"]
    __masks__ = {"hot": lambda self: self.temp > 100.0}
    __triggers__ = [
        trigger(
            "Guard",
            "relative((Trip & hot), Reset)",
            action=_noop_action,
            perpetual=True,
        ),
    ]

_ids = iter(range(10_000))


def _open(engine="mm", path=None, **kwargs):
    return Database.open(
        path, engine=engine, name=f"mvcc-{next(_ids)}", **kwargs
    )


def _setup_watched(db, n_triggers=1):
    with db.transaction():
        handle = db.pnew(HotObject)
        for _ in range(n_triggers):
            handle.Watch()
        return handle.ptr


def _statenums(db, ptr):
    with db.transaction():
        return [s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)]


# ---------------------------------------------------------------------------
# Opening / configuration
# ---------------------------------------------------------------------------


def test_open_rejects_unknown_scheme_and_policy(tmp_path):
    with pytest.raises(DatabaseError, match="trigger_cc"):
        Database.open(None, engine="mm", name="bad-cc", trigger_cc="occ")
    with pytest.raises(DatabaseError, match="mvcc_conflict"):
        Database.open(
            None, engine="mm", name="bad-pol",
            trigger_cc="mvcc", mvcc_conflict="merge",
        )
    # Neither failed open may leak its name registration.
    db = Database.open(None, engine="mm", name="bad-cc", trigger_cc="mvcc")
    db.close()


def test_2pl_baseline_has_no_version_manager():
    db = _open()
    try:
        assert db.trigger_cc == "2pl"
        assert db.trigger_system.versions is None
    finally:
        db.close()


# ---------------------------------------------------------------------------
# The advance buffer
# ---------------------------------------------------------------------------


def test_posting_takes_no_x_locks_and_writes_no_state():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        lock_before = db.storage.lock_manager.stats.snapshot()
        with db.transaction():
            h = db.deref(ptr)
            h.post_event("Ping")
            h.post_event("Pong")
        lock_after = db.storage.lock_manager.stats.snapshot()
        assert lock_after["x_acquired"] == lock_before["x_acquired"]
        assert lock_after["upgrades"] == lock_before["upgrades"]
        assert db.trigger_system.stats.state_writes == 0
        mvcc = db.trigger_system.versions.stats
        assert mvcc.buffered_advances == 2
        assert mvcc.clean_merges == 1
        assert mvcc.conflicts == 0
    finally:
        db.close()


def test_buffered_advance_is_visible_to_own_transaction():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            h = db.deref(ptr)
            before = [
                s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)
            ]
            h.post_event("Ping")
            during = [
                s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)
            ]
        assert during != before  # read-your-writes through the buffer
    finally:
        db.close()


def test_abort_discards_the_buffer():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        committed = _statenums(db, ptr)
        txn = db.txn_manager.begin()
        h = db.deref(ptr)
        h.post_event("Ping")
        db.txn_manager.abort(txn)
        assert _statenums(db, ptr) == committed
        assert db.trigger_system.versions.stats.merges == 0
    finally:
        db.close()


def test_committed_states_match_2pl_semantics():
    final = {}
    for cc in ("2pl", "mvcc"):
        db = _open(trigger_cc=cc)
        try:
            ptr = _setup_watched(db, n_triggers=2)
            for _ in range(3):
                with db.transaction():
                    h = db.deref(ptr)
                    h.post_event("Ping")
                    h.post_event("Pong")
            final[cc] = _statenums(db, ptr)
        finally:
            db.close()
    assert final["mvcc"] == final["2pl"]


def test_fresh_activation_and_advance_in_one_transaction():
    db = _open(trigger_cc="mvcc")
    try:
        with db.transaction():
            h = db.pnew(HotObject)
            h.Watch()
            h.post_event("Ping")  # advances the machine it just activated
            ptr = h.ptr
        states = _statenums(db, ptr)
        assert len(states) == 1
        # The Ping survived the commit of the fresh entry.
        db2 = _open(trigger_cc="2pl")
        try:
            p2 = _setup_watched(db2)
            with db2.transaction():
                db2.deref(p2).post_event("Ping")
            assert states == _statenums(db2, p2)
        finally:
            db2.close()
    finally:
        db.close()


def test_deactivate_with_buffered_advances_drops_entry_and_chain():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")  # materialize the chain
        versions = db.trigger_system.versions
        assert versions.chain_lengths()
        with db.transaction():
            h = db.deref(ptr)
            h.post_event("Ping")
            (tid, _, _), = db.trigger_system.active_triggers(ptr)
            db.trigger_system.deactivate(tid)
        assert versions.chain_lengths() == {}
        assert _statenums(db, ptr) == []
    finally:
        db.close()


def test_mvcc_durability_across_reopen(tmp_path):
    path = str(tmp_path / "mvccdisk")
    db = _open(engine="disk", path=path, trigger_cc="mvcc")
    ptr = None
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")
        expected = _statenums(db, ptr)
    finally:
        db.close()
    db = _open(engine="disk", path=path, trigger_cc="mvcc")
    try:
        assert _statenums(db, PersistentPtr(db.name, ptr.rid)) == expected
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Commit-time merge: conflicts
# ---------------------------------------------------------------------------


def _conflicting_pair(db, ptr, scheduler, *, retries=0):
    """Two cooperative sessions that both buffer against the same base
    version before either commits — a guaranteed lost update.

    *retries* is the CC_CONFLICT retry budget (``session.run``'s
    ``retries=`` keyword only overrides the deadlock budget).
    """
    from repro.faults.retry import DEFAULT_UNIFIED_RETRY, RetryClass

    policy = DEFAULT_UNIFIED_RETRY.with_budget(RetryClass.CC_CONFLICT, retries)
    outcomes = []

    def make(idx, session):
        def program():
            def body(txn):
                db_h = session.deref(ptr)
                db_h.post_event("Ping")
                scheduler.yield_now()  # both buffer before either commits
                db_h.post_event("Pong")

            try:
                session.run(body, policy=policy)
                outcomes.append((idx, "committed"))
            except TriggerStateConflictError:
                outcomes.append((idx, "conflict"))
            finally:
                session.close()

        return program

    for i in range(2):
        session = db.session(f"racer-{i}")
        scheduler.spawn(make(i, session), name=f"racer-{i}", session=session)
    scheduler.run()
    return outcomes


def test_conflict_policy_replay_merges_both_transactions():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler)
        assert sorted(outcomes) == [(0, "committed"), (1, "committed")]
        mvcc = db.trigger_system.versions.stats
        assert mvcc.conflicts >= 1
        assert mvcc.replays == mvcc.conflicts
        assert mvcc.conflict_aborts == 0
        # Serial oracle: 4 events in commit order on a fresh 2PL database.
        db2 = _open()
        try:
            p2 = _setup_watched(db2)
            for _ in range(2):
                with db2.transaction():
                    h = db2.deref(p2)
                    h.post_event("Ping")
                    h.post_event("Pong")
            assert _statenums(db, ptr) == _statenums(db2, p2)
        finally:
            db2.close()
    finally:
        db.close()


def test_conflict_policy_abort_raises_and_retry_succeeds():
    db = _open(trigger_cc="mvcc", mvcc_conflict="abort")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler, retries=5)
        # The loser aborted, retried through session.run, and committed.
        assert sorted(outcomes) == [(0, "committed"), (1, "committed")]
        mvcc = db.trigger_system.versions.stats
        assert mvcc.conflict_aborts >= 1
        assert mvcc.replays == 0
        assert db.session_stats.conflict_retries >= 1
    finally:
        db.close()


def test_conflict_abort_without_retry_budget_propagates():
    db = _open(trigger_cc="mvcc", mvcc_conflict="abort")
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        outcomes = _conflicting_pair(db, ptr, scheduler, retries=0)
        assert (0, "committed") in outcomes or (1, "committed") in outcomes
        assert any(kind == "conflict" for _, kind in outcomes)
        assert db.session_stats.retry_exhausted >= 1
        # The exhausted victim must not have been counted as a retry.
        assert db.session_stats.conflict_retries == 0
    finally:
        db.close()


def test_replay_uses_posting_time_mask_outcomes():
    """A conflict replay must re-advance with the mask outcomes observed
    when each event was posted — not re-evaluate the masks against the
    anchor object's commit-time attribute values, which the transaction
    may have mutated after posting."""
    db = _open(trigger_cc="mvcc")
    try:
        with db.transaction():
            h = db.pnew(GatedHot)
            h.Guard()
            ptr = h.ptr
        versions = db.trigger_system.versions
        idle = _statenums(db, ptr)

        txn = db.txn_manager.begin()
        h = db.deref(ptr)
        h.temp = 150.0
        h.post_event("Trip")  # hot == True, captured at posting time
        armed = [
            s.statenum for _, s, _ in db.trigger_system.active_triggers(ptr)
        ]
        assert armed != idle  # the mask outcome is visible in the statenum
        h.temp = 0.0  # a commit-time evaluation would now say hot == False

        # Simulate a concurrent committer: republish the head (same state,
        # new vid) so this transaction's merge takes the replay path.
        (state_rid,) = versions.chain_lengths()
        head = versions.head_or_none(state_rid)
        versions.publish(
            types.SimpleNamespace(attachments={}),
            [(state_rid, head.state.clone())],
        )
        db.txn_manager.commit(txn)

        assert versions.stats.replays == 1
        assert _statenums(db, ptr) == armed
    finally:
        db.close()


def test_failed_merge_rolls_back_under_the_commit_mutex():
    """When the storage commit fails after write_merged calls succeeded,
    the WAL undo must run while the commit mutex is still held: merged
    writes carry no record locks, so a concurrent committer's
    write_merged could otherwise capture the aborting transaction's
    uncommitted bytes as its before-image and then lose its own committed
    merge to the undo."""
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")  # materialize the chain
        versions = db.trigger_system.versions
        storage = db.storage
        real_commit = storage.commit_transaction
        real_abort = storage.abort_transaction
        owned_at_abort = []

        def failing_commit(txid):
            raise StorageError("injected commit failure")

        def recording_abort(txid):
            owned_at_abort.append(versions.commit_mutex._is_owned())
            return real_abort(txid)

        storage.commit_transaction = failing_commit
        storage.abort_transaction = recording_abort
        try:
            txn = db.txn_manager.begin()
            db.deref(ptr).post_event("Ping")
            with pytest.raises(StorageError, match="injected"):
                db.txn_manager.commit(txn)
        finally:
            storage.commit_transaction = real_commit
            storage.abort_transaction = real_abort

        assert owned_at_abort == [True]
        # The rollback restored the committed bytes: storage agrees with
        # the published head, and the failed merge left no trace.
        (state_rid,) = versions.chain_lengths()
        head = versions.head_or_none(state_rid)
        assert (
            TriggerState.decode(storage.peek(state_rid)).statenum
            == head.state.statenum
        )
        # The engine is healthy: the next transaction merges normally
        # (Pong fires and re-arms the machine, flipping the statenum).
        before = _statenums(db, ptr)
        with db.transaction():
            db.deref(ptr).post_event("Pong")
        assert _statenums(db, ptr) != before
    finally:
        db.close()


def test_conflict_abort_storm_keeps_storage_consistent_with_heads():
    """Real threads, ``mvcc_conflict="abort"``: every losing transaction
    rolls its merged writes back under the commit mutex, so storage bytes
    can never diverge from the published version-chain head (the lost
    committed update the rollback-outside-the-mutex race allowed)."""
    db = _open(trigger_cc="mvcc", mvcc_conflict="abort")
    try:
        ptr = _setup_watched(db)
        with db.transaction():
            db.deref(ptr).post_event("Ping")  # materialize the chain
        errors: list[Exception] = []
        start = threading.Barrier(6)

        def worker(index):
            session = db.session(f"storm-{index}")
            try:
                start.wait()
                for _ in range(15):

                    def body(txn):
                        h = session.deref(ptr)
                        h.post_event("Ping")
                        h.post_event("Pong")

                    try:
                        session.run(body)
                    except TriggerStateConflictError:
                        pass  # retry budget exhausted: already rolled back
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        versions = db.trigger_system.versions
        for state_rid in versions.chain_lengths():
            head = versions.head_or_none(state_rid)
            assert (
                TriggerState.decode(db.storage.peek(state_rid)).statenum
                == head.state.statenum
            ), "storage bytes diverged from the published head"
    finally:
        db.close()


def test_commit_mutex_is_sharded_by_rid():
    """The commit mutex shards by ``rid % N``: a commit section takes
    only the shards its buffer covers (ascending), the whole-mutex
    context manager still freezes everything, and ``_is_owned`` reports
    ownership of any shard (the rollback-under-mutex probe)."""
    from repro.core.versioned import DEFAULT_COMMIT_SHARDS, ShardedCommitMutex

    mutex = ShardedCommitMutex(4)
    assert mutex.shard_count == 4
    assert mutex.indices_for([0, 4, 5, 13]) == [0, 1]  # 13 % 4 == 1
    assert mutex.indices_for([]) == [0, 1, 2, 3]  # unknown footprint: all
    assert not mutex._is_owned()
    with mutex.acquire([5]):
        assert mutex._is_owned()
        # Only shard 1 is held: another thread can take shard 2.
        grabbed = []

        def try_other():
            with mutex.acquire([2]):
                grabbed.append(True)

        t = threading.Thread(target=try_other)
        t.start()
        t.join(timeout=10)
        assert grabbed == [True]
    assert not mutex._is_owned()
    with mutex:  # stop-the-world compatibility surface
        assert mutex._is_owned()
    with pytest.raises(ValueError, match="shards"):
        ShardedCommitMutex(0)

    db = _open(trigger_cc="mvcc")
    try:
        assert db.trigger_system.versions.commit_mutex.shard_count == (
            DEFAULT_COMMIT_SHARDS
        )
    finally:
        db.close()


def test_sharded_commit_storm_keeps_storage_consistent_with_heads():
    """Real threads, many machines spread over every commit-mutex shard:
    committers with disjoint rid footprints merge and publish fully in
    parallel, and for every state rid the committed storage bytes still
    equal the published chain head — per-rid exclusion survived the
    sharding."""
    db = _open(trigger_cc="mvcc")
    try:
        ptrs = [_setup_watched(db) for _ in range(12)]
        with db.transaction():
            for ptr in ptrs:
                db.deref(ptr).post_event("Ping")  # materialize every chain

        versions = db.trigger_system.versions
        # The fixture really exercises multiple shards.
        rids = list(versions.chain_lengths())
        assert len({versions.commit_mutex.shard_of(rid) for rid in rids}) > 1

        errors: list[Exception] = []
        start = threading.Barrier(6)

        def worker(index):
            session = db.session(f"shard-storm-{index}")
            try:
                start.wait()
                for step in range(12):
                    # Each txn touches two machines; the pairing varies
                    # per worker/step so footprints overlap sometimes and
                    # are disjoint sometimes.
                    a = ptrs[(index + step) % len(ptrs)]
                    b = ptrs[(index * 3 + step * 5) % len(ptrs)]

                    def body(txn):
                        session.deref(a).post_event("Ping")
                        session.deref(b).post_event("Pong")

                    session.run(body)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        for state_rid in versions.chain_lengths():
            head = versions.head_or_none(state_rid)
            assert (
                TriggerState.decode(db.storage.peek(state_rid)).statenum
                == head.state.statenum
            ), "storage bytes diverged from the published head"
    finally:
        db.close()


def test_version_chain_grows_one_head_per_publishing_commit():
    db = _open(trigger_cc="mvcc")
    try:
        ptr = _setup_watched(db)
        versions = db.trigger_system.versions
        for expected in (2, 3, 4):  # activation head + one per commit
            with db.transaction():
                db.deref(ptr).post_event("Ping")
            (length,) = versions.chain_lengths().values()
            assert length == expected
    finally:
        db.close()


# ---------------------------------------------------------------------------
# E6 in miniature: the §6 pathology and its absence under MVCC
# ---------------------------------------------------------------------------


def test_hot_set_mvcc_zero_deadlocks_zero_x_locks():
    from repro.workloads.locksim import run_hot_set

    result = run_hot_set(
        4, 1, n_sessions=8, transactions=40, trigger_cc="mvcc"
    )
    assert result.committed == 40
    assert result.x_locks == 0
    assert result.lock_waits == 0
    assert result.deadlock_aborts == 0
    assert result.state_writes == 0
    assert result.buffered_advances > 0
    assert result.merges > 0

    baseline = run_hot_set(4, 1, n_sessions=8, transactions=40)
    assert baseline.x_locks > 0 and baseline.lock_waits > 0


# ---------------------------------------------------------------------------
# Cross-scheme equivalence (hypothesis)
# ---------------------------------------------------------------------------

_EVENTS = st.lists(st.sampled_from(["Ping", "Pong"]), min_size=1, max_size=3)
_SESSION_SCRIPT = st.lists(_EVENTS, min_size=1, max_size=3)
_SCRIPT = st.lists(_SESSION_SCRIPT, min_size=2, max_size=3)


def _run_script(script, trigger_cc):
    """Run one transaction per event-list per session under a cooperative
    scheduler; returns (final statenums, transactions in commit order)."""
    db = _open(trigger_cc=trigger_cc)
    try:
        ptr = _setup_watched(db)
        scheduler = CooperativeScheduler()
        commit_order = []

        def make(idx, txns):
            session = db.session(f"s{idx}")

            def program():
                for t, events in enumerate(txns):

                    def body(txn, events=events):
                        h = session.deref(ptr)
                        for ev in events:
                            h.post_event(ev)
                            scheduler.yield_now()

                    session.run(body, retries=50)
                    # No yield between the commit inside run() and this
                    # append, so the log is the commit completion order.
                    commit_order.append((idx, t))
                    scheduler.yield_now()
                session.close()

            return program

        for idx, txns in enumerate(script):
            scheduler.spawn(make(idx, txns), name=f"s{idx}")
        scheduler.run()
        return _statenums(db, ptr), commit_order
    finally:
        db.close()


def _serial_oracle(script, commit_order):
    """The same transactions applied serially, in observed commit order."""
    db = _open()  # plain 2PL, single session — trivially serial
    try:
        ptr = _setup_watched(db)
        for idx, t in commit_order:
            with db.transaction():
                h = db.deref(ptr)
                for ev in script[idx][t]:
                    h.post_event(ev)
        return _statenums(db, ptr)
    finally:
        db.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_both_schemes_serialize_under_any_interleaving(script):
    for cc in ("mvcc", "2pl"):
        final, commit_order = _run_script(script, cc)
        assert sorted(commit_order) == [
            (idx, t) for idx in range(len(script))
            for t in range(len(script[idx]))
        ]
        assert final == _serial_oracle(script, commit_order), (
            f"{cc}: final state diverges from its own commit-order serial "
            f"replay (order {commit_order})"
        )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_schemes_agree_directly_with_txn_boundary_yields(script):
    """With no yields inside transaction bodies both schemes see the same
    interleaving, so the committed states must be *identical*."""

    def run(trigger_cc):
        db = _open(trigger_cc=trigger_cc)
        try:
            ptr = _setup_watched(db)
            scheduler = CooperativeScheduler()

            def make(idx, txns):
                session = db.session(f"s{idx}")

                def program():
                    for events in txns:

                        def body(txn, events=events):
                            h = session.deref(ptr)
                            for ev in events:
                                h.post_event(ev)

                        session.run(body, retries=50)
                        scheduler.yield_now()
                    session.close()

                return program

            for idx, txns in enumerate(script):
                scheduler.spawn(make(idx, txns), name=f"s{idx}")
            scheduler.run()
            return _statenums(db, ptr)
        finally:
            db.close()

    assert run("mvcc") == run("2pl")


# ---------------------------------------------------------------------------
# Satellite: TriggerState.decode field validation
# ---------------------------------------------------------------------------


def _encoded_state(**overrides):
    from repro.objects.serialize import encode_value

    payload = {
        "triggernum": 0,
        "trigobj": PersistentPtr("db", 7),
        "statenum": 1,
        "trigobjtype": "HotObject",
        "params": {},
    }
    payload.update(overrides)
    out = bytearray()
    encode_value(payload, out)
    return bytes(out)


class TestDecodeValidation:
    def test_roundtrip_still_works(self):
        decoded = TriggerState.decode(_encoded_state())
        assert decoded.statenum == 1
        assert decoded.trigobjtype == "HotObject"

    @pytest.mark.parametrize(
        "field_name, bad",
        [
            ("statenum", "one"),
            ("statenum", True),  # bool is an int subclass: still corrupt
            ("triggernum", 1.5),
            ("trigobjtype", 42),
            ("trigobj", "not-a-pointer"),
            ("params", [1, 2]),
        ],
    )
    def test_wrong_field_type_names_the_field(self, field_name, bad):
        with pytest.raises(TriggerError, match=field_name):
            TriggerState.decode(_encoded_state(**{field_name: bad}))

    def test_non_mapping_payload_rejected(self):
        from repro.objects.serialize import encode_value

        out = bytearray()
        encode_value([1, 2, 3], out)
        with pytest.raises(TriggerError, match="mapping"):
            TriggerState.decode(bytes(out))

    def test_verify_integrity_reports_corrupt_record_instead_of_crashing(self):
        db = _open()
        try:
            ptr = _setup_watched(db)
            with db.transaction() as txn:
                (state_rid,) = db.trigger_system.index.lookup(txn, ptr.rid)
                db.storage.write(
                    txn.txid, state_rid, _encoded_state(statenum="broken")
                )
            with db.transaction():
                problems = db.trigger_system.verify_integrity()
            assert any("statenum" in p for p in problems)
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Satellite: LockStats snapshot/reset synchronization
# ---------------------------------------------------------------------------


class TestLockStatsSynchronization:
    N_THREADS = 8
    ITERATIONS = 50

    def test_exactly_once_counts_under_threads(self):
        """8 threads do S-then-upgrade-to-X on private resources; every
        counter must land exactly once per acquisition (the PR-7
        ``FaultInjector.hits`` discipline applied to LockStats)."""
        manager = LockManager()
        manager.blocking = True
        start = threading.Barrier(self.N_THREADS)
        torn: list[dict] = []
        stop = threading.Event()

        def snapshotter():
            # Concurrent observer: under the shared mutex a snapshot can
            # never see x_acquired without its paired upgrades increment.
            while not stop.is_set():
                snap = manager.stats.snapshot()
                if snap["upgrades"] != snap["x_acquired"]:
                    torn.append(snap)

        def worker(tid):
            start.wait()
            for i in range(self.ITERATIONS):
                resource = f"r-{tid}-{i}"
                txid = tid * 10_000 + i
                manager.lock(txid, resource, LockMode.S)
                manager.lock(txid, resource, LockMode.X)  # upgrade
                manager.release_all(txid)

        observer = threading.Thread(target=snapshotter)
        observer.start()
        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        observer.join()

        total = self.N_THREADS * self.ITERATIONS
        snap = manager.stats.snapshot()
        assert snap["s_acquired"] == total
        assert snap["x_acquired"] == total
        assert snap["upgrades"] == total
        assert torn == [], f"torn snapshot(s) observed: {torn[:3]}"

    def test_reset_is_atomic_against_increments(self):
        manager = LockManager()
        manager.blocking = True
        start = threading.Barrier(2)
        done = threading.Event()

        def worker():
            start.wait()
            for i in range(500):
                txid = 1_000 + i
                manager.lock(txid, f"rr-{i}", LockMode.S)
                manager.lock(txid, f"rr-{i}", LockMode.X)
                manager.release_all(txid)
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        start.wait()
        while not done.is_set():
            manager.stats.reset()
            snap = manager.stats.snapshot()
            # snapshot and the paired x/upgrade increments share the
            # manager mutex, so the two counters can never be seen apart.
            assert snap["x_acquired"] == snap["upgrades"]
        t.join()

    def test_standalone_stats_have_their_own_lock(self):
        stats = LockStats()
        stats.s_acquired = 3
        assert stats.snapshot()["s_acquired"] == 3
        stats.reset()
        assert stats.snapshot()["s_acquired"] == 0


# ---------------------------------------------------------------------------
# Satellite: MvccStats synchronization (same discipline as LockStats)
# ---------------------------------------------------------------------------


class TestMvccStatsSynchronization:
    N_THREADS = 8
    TXNS_EACH = 15

    def test_buffered_advances_exactly_once_under_threads(self):
        """8 threaded sessions post concurrently; ``buffered_advances``
        must land exactly once per advance (posting increments it from
        session threads, so an unguarded ``+=`` would lose counts), and a
        concurrent snapshot must never see the merge counters torn apart
        (``merges`` is incremented in the same critical section as its
        ``clean_merges``/``conflicts`` breakdown)."""
        db = _open(trigger_cc="mvcc")
        try:
            ptr = _setup_watched(db)
            mvcc = db.trigger_system.versions.stats
            errors: list[Exception] = []
            torn: list[dict] = []
            stop = threading.Event()
            start = threading.Barrier(self.N_THREADS)

            def snapshotter():
                while not stop.is_set():
                    snap = mvcc.snapshot()
                    if snap["merges"] != snap["clean_merges"] + snap["conflicts"]:
                        torn.append(snap)

            def worker(index):
                session = db.session(f"stats-{index}")
                try:
                    start.wait()
                    for _ in range(self.TXNS_EACH):

                        def body(txn):
                            h = session.deref(ptr)
                            h.post_event("Ping")
                            h.post_event("Pong")

                        session.run(body, retries=500)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    session.close()

            observer = threading.Thread(target=snapshotter)
            observer.start()
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(self.N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stop.set()
            observer.join()

            assert not errors, errors
            # Replay policy: conflicts merge without re-running the body,
            # so every transaction posted its two events exactly once.
            expected = self.N_THREADS * self.TXNS_EACH * 2
            assert mvcc.buffered_advances == expected
            assert torn == [], f"torn snapshot(s) observed: {torn[:3]}"
        finally:
            db.close()

    def test_standalone_stats_have_their_own_lock(self):
        stats = MvccStats()
        stats.buffered_advances = 3
        assert stats.snapshot()["buffered_advances"] == 3
        stats.reset()
        assert stats.snapshot()["buffered_advances"] == 0


# ---------------------------------------------------------------------------
# Crash matrix under MVCC (quick subsets; full matrices in
# tests/test_crash_matrix.py behind the crash_matrix marker)
# ---------------------------------------------------------------------------


def test_mvcc_crash_quick_subset_mm(tmp_path):
    from repro.faults.harness import explore

    result = explore(
        str(tmp_path / "mvcc-mm"), engine="mm", limit=10, trigger_cc="mvcc"
    )
    assert len(result.explored) >= 10
    assert {"wal", "checkpoint"} <= result.families_explored


def test_mvcc_crash_quick_subset_disk(tmp_path):
    from repro.faults.harness import explore

    result = explore(
        str(tmp_path / "mvcc-disk"), engine="disk", limit=12, trigger_cc="mvcc"
    )
    assert len(result.explored) >= 12
    assert {"wal", "page", "txn"} <= result.families_explored
