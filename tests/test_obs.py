"""Observability layer: metrics registry, trace recorder, instrumentation.

Everything here is marked ``obs``.  The suite covers the registry and
recorder as plain data structures, the posting-path instrumentation
end-to-end (spans, mask evaluations, firing order), the per-transaction
metrics delta, and the :class:`EventOccurrence` immutability regression
that motivated ``FrozenKwargs``.
"""

import dataclasses

import pytest

from repro import obs
from repro.core.declarations import trigger
from repro.core.posting import EMPTY_KWARGS, EventOccurrence, FrozenKwargs
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, describe
from repro.obs.trace import (
    TraceRecord,
    TraceRecorder,
    records_from_jsonl,
    records_to_jsonl,
    render_record,
    render_trace,
    summarize_trace,
)
from repro.objects.persistent import Persistent
from repro.objects.schema import field

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _tracing_off():
    """Never leak an enabled recorder between tests."""
    yield
    obs.disable()


class ObsGadget(Persistent):
    n = field(int, default=0)
    limit = field(int, default=2)

    __events__ = ["after bump", "after poke"]
    __masks__ = {
        "over": lambda self: self.n > self.limit,
        "small": lambda self: self.n <= self.limit,
    }
    __triggers__ = [
        trigger("WatchAll", "after bump", action=lambda s, c: None, perpetual=True),
        trigger("WatchOver", "after bump & over", action=lambda s, c: None, perpetual=True),
        # `*(e) & m` leaves a mask obligation on the FSM start state, so
        # activating this trigger evaluates `small` immediately.
        trigger("StarMask", "(*(after bump) & small, after poke)", action=lambda s, c: None),
    ]

    def bump(self):
        self.n += 1

    def poke(self):
        pass


# -- MetricsRegistry -----------------------------------------------------------


@dataclasses.dataclass
class _FakeStats:
    hits: int = 0
    misses: int = 0

    def snapshot(self):
        return dataclasses.asdict(self)

    def reset(self):
        self.hits = self.misses = 0


class TestMetricsRegistry:
    def test_counter_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a.b").inc(4)
        assert registry.snapshot() == {"a.b": 5}
        assert int(registry.counter("a.b")) == 5

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in (1, 2, 3, 10):
            hist.observe(v)
        snap = registry.snapshot()["lat"]
        assert snap["count"] == 4
        assert snap["min"] == 1
        assert snap["max"] == 10
        assert snap["mean"] == pytest.approx(4.0)

    def test_source_mounted_under_prefix(self):
        registry = MetricsRegistry()
        stats = _FakeStats()
        registry.register_source("cache", stats)
        stats.hits += 3
        assert registry.snapshot() == {"cache.hits": 3, "cache.misses": 0}

    def test_reregistering_prefix_replaces(self):
        registry = MetricsRegistry()
        old, new = _FakeStats(hits=7), _FakeStats()
        registry.register_source("cache", old)
        registry.register_source("cache", new)
        assert registry.snapshot()["cache.hits"] == 0

    def test_diff_and_delta_since(self):
        registry = MetricsRegistry()
        stats = _FakeStats()
        registry.register_source("cache", stats)
        registry.counter("ops")
        before = registry.snapshot()
        stats.hits += 2
        registry.counter("ops").inc(9)
        delta = registry.delta_since(before)
        assert delta["cache.hits"] == 2
        assert delta["ops"] == 9
        assert MetricsRegistry.diff(before, before) == {
            "cache.hits": 0,
            "cache.misses": 0,
            "ops": 0,
        }

    def test_diff_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(10)
        before = registry.snapshot()
        registry.histogram("h").observe(30)
        delta = registry.delta_since(before)["h"]
        assert delta["count"] == 1
        assert delta["mean"] == pytest.approx(30.0)

    def test_measure_context(self):
        registry = MetricsRegistry()
        with registry.measure() as delta:
            registry.counter("x").inc(2)
        assert delta["x"] == 2

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        stats = _FakeStats(hits=5)
        registry.register_source("cache", stats)
        registry.counter("c").inc()
        registry.histogram("h").observe(1)
        registry.reset()
        snap = registry.snapshot()
        assert snap["cache.hits"] == 0
        assert snap["c"] == 0
        assert snap["h"]["count"] == 0

    def test_describe_renders_sorted_lines(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.histogram("h").observe(4)
        lines = describe(registry.snapshot())
        assert lines[0] == "a = 1"
        assert lines[1] == "b = 2"
        assert lines[2].startswith("h = {count=1")


# -- TraceRecorder -------------------------------------------------------------


class TestTraceRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            recorder.emit("tick", i=i)
        assert len(recorder) == 3
        assert [r.get("i") for r in recorder.records()] == [2, 3, 4]
        assert recorder.stats.records_dropped == 2
        assert recorder.stats.records_emitted == 5

    def test_seq_keeps_counting_past_drops(self):
        recorder = TraceRecorder(capacity=2)
        for _ in range(4):
            recorder.emit("tick")
        assert [r.seq for r in recorder.records()] == [3, 4]

    def test_jsonl_round_trip_is_identity(self):
        recorder = TraceRecorder()
        recorder.emit("a", x=1, y="s", z=[1, 2], w={"k": True}, n=None)
        span = recorder.begin_span("post", rid=7)
        recorder.emit("mask.eval", span=span, outcome=False)
        recorder.end_span(span, "post", firings=0)
        text = recorder.to_jsonl()
        assert records_from_jsonl(text) == recorder.records()

    def test_non_json_values_coerced_at_emit(self):
        recorder = TraceRecorder()

        class Opaque:
            def __repr__(self):
                return "<opaque>"

        recorder.emit("a", obj=Opaque(), t=(1, 2))
        record = recorder.records()[0]
        assert record.get("obj") == "<opaque>"
        assert record.get("t") == [1, 2]  # tuples normalize to lists
        assert records_from_jsonl(recorder.to_jsonl()) == recorder.records()

    def test_export(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit("a", x=1)
        path = str(tmp_path / "t.jsonl")
        assert recorder.export(path) == 1
        from repro.obs.trace import load_jsonl

        assert load_jsonl(path) == recorder.records()

    def test_render_trace_indents_spans_and_numbers_fires(self):
        recorder = TraceRecorder()
        span = recorder.begin_span("post", rid=1)
        recorder.emit("fire", span=span, trigger="A")
        recorder.emit("fire", span=span, trigger="B")
        recorder.end_span(span, "post", firings=2)
        recorder.emit("txn.commit", txid=9)
        lines = render_trace(recorder.records())
        assert lines[0].lstrip().startswith("[")
        assert "post span=1" in lines[0]
        assert lines[1].startswith("    ") and "fire #1" in lines[1]
        assert lines[2].startswith("    ") and "fire #2" in lines[2]
        assert "end post" in lines[3]
        assert lines[4].lstrip().startswith("[") and "txn.commit" in lines[4]

    def test_summarize_and_render_record(self):
        recorder = TraceRecorder()
        recorder.emit("a")
        recorder.emit("a")
        recorder.emit("b", k=1)
        assert summarize_trace(recorder.records()) == {"a": 2, "b": 1}
        assert "b k=1" in render_record(recorder.records()[-1])


# -- module-level gate ---------------------------------------------------------


class TestObsGate:
    def test_disabled_by_default_and_emit_is_noop(self):
        assert obs.ENABLED is False
        obs.emit("nothing", x=1)  # must not raise without a recorder
        assert obs.begin_span("post") == obs.NO_SPAN
        obs.end_span(obs.NO_SPAN, "post")

    def test_enable_disable_round_trip(self):
        recorder = obs.enable(capacity=16)
        assert obs.ENABLED and obs.recorder() is recorder
        obs.emit("x")
        returned = obs.disable()
        assert returned is recorder
        assert not obs.ENABLED and obs.recorder() is None
        assert len(recorder) == 1

    def test_enabled_context(self):
        with obs.enabled() as recorder:
            assert obs.ENABLED
            obs.emit("y")
        assert not obs.ENABLED
        assert [r.kind for r in recorder.records()] == ["y"]


# -- posting-path integration ---------------------------------------------------


class TestPostingInstrumentation:
    def test_posting_trace_spans_masks_and_firing_order(self, mm_db):
        with mm_db.transaction():
            handle = mm_db.pnew(ObsGadget)
            ptr = handle.ptr
            handle.WatchAll()
            handle.WatchOver()

        with obs.enabled() as recorder:
            with mm_db.transaction():
                gadget = mm_db.deref(ptr)
                gadget.bump()  # n=1: WatchAll fires, WatchOver masked out
                gadget.bump()
                gadget.bump()  # n=3 > limit: both fire

        records = recorder.records()
        begins = [r for r in records if r.kind == "post.begin"]
        assert len(begins) == 3
        assert {r.get("method") for r in begins} == {"bump"}

        # Every in-span record carries its posting's span id.
        span = begins[-1].span
        block = [r for r in records if r.span == span]
        kinds = [r.kind for r in block]
        assert kinds[0] == "post.begin" and kinds[-1] == "post.end"
        assert "index.lookup" in kinds and "fsm.advance" in kinds

        masks = [r for r in block if r.kind == "mask.eval"]
        assert [(m.get("mask"), m.get("outcome")) for m in masks] == [("over", True)]
        assert all(m.get("phase") == "posting" for m in masks)

        fires = [r for r in block if r.kind == "fire"]
        assert len(fires) == 2
        assert [f.get("order") for f in fires] == [0, 1]

        rendered = "\n".join(render_trace(records))
        assert "fire #1" in rendered and "fire #2" in rendered
        assert "mask.eval" in rendered

    def test_skipped_posting_recorded(self, mm_db):
        with mm_db.transaction():
            ptr = mm_db.pnew(ObsGadget).ptr  # events declared, nothing active

        with obs.enabled() as recorder:
            with mm_db.transaction():
                mm_db.deref(ptr).bump()

        ends = [r for r in recorder.records() if r.kind == "post.end"]
        assert ends and ends[0].get("skipped") == "no-active-triggers"

    def test_transaction_delta(self, mm_db):
        with mm_db.transaction():
            handle = mm_db.pnew(ObsGadget)
            ptr = handle.ptr
            handle.WatchAll()

        with obs.enabled():
            with mm_db.transaction() as txn:
                mm_db.deref(ptr).bump()
                delta = obs.transaction_delta(txn)
        assert delta["posting.events_posted"] == 1
        assert delta["posting.firings"] == 1

    def test_transaction_delta_empty_when_tracing_off(self, mm_db):
        with mm_db.transaction() as txn:
            assert obs.transaction_delta(txn) == {}

    def test_mask_counter_split(self, mm_db):
        """Activation-time quiescing and posting-time evaluation count apart."""
        stats = mm_db.trigger_system.stats
        with mm_db.transaction():
            handle = mm_db.pnew(ObsGadget)
            ptr = handle.ptr
            handle.StarMask()  # start-state obligation: quiesced at activation
        assert stats.masks_evaluated_activation == 1
        assert stats.masks_evaluated_posting == 0

        with mm_db.transaction():
            mm_db.deref(ptr).bump()
        assert stats.masks_evaluated_activation == 1
        assert stats.masks_evaluated_posting >= 1
        # The legacy aggregate keeps old consumers working.
        assert stats.masks_evaluated == (
            stats.masks_evaluated_activation + stats.masks_evaluated_posting
        )

    def test_activation_mask_eval_traced(self, mm_db):
        with obs.enabled() as recorder:
            with mm_db.transaction():
                mm_db.pnew(ObsGadget).StarMask()
        masks = [r for r in recorder.records() if r.kind == "mask.eval"]
        assert masks and all(m.get("phase") == "activation" for m in masks)
        assert any(r.kind == "trigger.activate" for r in recorder.records())

    def test_db_metrics_snapshot_has_all_prefixes(self, disk_db):
        snap = disk_db.metrics.snapshot()
        assert any(k.startswith("posting.") for k in snap)
        assert any(k.startswith("storage.") for k in snap)
        assert any(k.startswith("locks.") for k in snap)


# -- EventOccurrence immutability regression ------------------------------------


class TestEventOccurrenceImmutability:
    def test_kwargs_copied_not_aliased(self):
        caller_kwargs = {"dest": "x"}
        event = EventOccurrence(1, "m", (1,), caller_kwargs)
        caller_kwargs["dest"] = "mutated"
        assert event.kwargs["dest"] == "x"

    def test_kwargs_mapping_interface(self):
        event = EventOccurrence(1, "m", (), {"dest": "x", "n": 2})
        assert event.kwargs.get("dest") == "x"
        assert event.kwargs.get("missing", "d") == "d"
        assert "n" in event.kwargs and len(event.kwargs) == 2
        assert dict(event.kwargs) == {"dest": "x", "n": 2}

    def test_kwargs_not_mutable(self):
        event = EventOccurrence(1, "m")
        with pytest.raises(TypeError):
            event.kwargs["k"] = 1

    def test_hashable_and_equal(self):
        a = EventOccurrence(1, "m", (1, 2), {"k": "v"})
        b = EventOccurrence(1, "m", (1, 2), {"k": "v"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_args_normalized_to_tuple(self):
        event = EventOccurrence(1, "m", [1, 2])
        assert event.args == (1, 2)
        assert type(event.args) is tuple

    def test_empty_kwargs_shared_sentinel(self):
        assert EventOccurrence(1).kwargs is EMPTY_KWARGS
        assert EventOccurrence(1, kwargs={}).kwargs is EMPTY_KWARGS

    def test_frozen_kwargs_equality_with_plain_dict(self):
        frozen = FrozenKwargs({"a": 1})
        assert frozen == {"a": 1}
        assert frozen != {"a": 2}
        assert hash(frozen) == hash(FrozenKwargs({"a": 1}))
