"""Tests for the miniature O++ front end (the paper's Section 4 syntax)."""

import pytest

from repro.errors import TriggerDeclarationError
from repro.opp import compile_opp_class

CREDCARD_SOURCE = """
persistent class PaperCard {
    float credLim = 1000;
    float currBal = 0;
    int marks = 0;
    event after Buy, after PayBill, BigBuy;
    trigger DenyCredit() : perpetual
        after Buy & over_limit ==> { BlackMark(); tabort; }
    trigger AutoRaiseLimit(float amount) :
        relative((after Buy & MoreCred()), after PayBill)
        ==> RaiseLimit(amount);
}
"""


def _methods():
    def Buy(self, store, amount):
        self.currBal += amount

    def PayBill(self, amount):
        self.currBal -= amount

    def RaiseLimit(self, amount):
        self.credLim += amount

    def BlackMark(self):
        self.marks += 1

    return {"Buy": Buy, "PayBill": PayBill, "RaiseLimit": RaiseLimit,
            "BlackMark": BlackMark}


def _masks():
    return {
        "over_limit": lambda self: self.currBal > self.credLim,
        "MoreCred": lambda self: self.currBal > 0.8 * self.credLim,
    }


@pytest.fixture(scope="module")
def PaperCard():
    return compile_opp_class(CREDCARD_SOURCE, methods=_methods(), masks=_masks())


class TestCompilation:
    def test_class_name_and_fields(self, PaperCard):
        card = PaperCard()
        assert type(card).__name__ == "PaperCard"
        assert card.credLim == 1000.0
        assert card.currBal == 0.0
        assert card.marks == 0

    def test_events_declared(self, PaperCard):
        symbols = {d.symbol for d in PaperCard.__metatype__.declared_events}
        assert symbols == {"after Buy", "after PayBill", "BigBuy"}

    def test_triggers_compiled(self, PaperCard):
        names = {i.name for i in PaperCard.__metatype__.trigger_infos}
        assert names == {"DenyCredit", "AutoRaiseLimit"}
        deny = PaperCard.__metatype__.trigger_by_name("DenyCredit")
        assert deny.perpetual
        auto = PaperCard.__metatype__.trigger_by_name("AutoRaiseLimit")
        assert auto.params == ("amount",)
        assert not auto.perpetual

    def test_figure1_machine_comes_out_of_the_syntax(self, PaperCard):
        auto = PaperCard.__metatype__.trigger_by_name("AutoRaiseLimit")
        assert len(auto.compiled.fsm) == 4  # paper Figure 1


class TestRuntime:
    def test_full_paper_scenario(self, PaperCard, any_engine_db):
        db = any_engine_db
        with db.transaction():
            card = db.pnew(PaperCard)
            ptr = card.ptr
            card.DenyCredit()
            card.AutoRaiseLimit(500.0)
        with db.transaction():
            db.deref(ptr).Buy(None, 300.0)
        with db.transaction():
            db.deref(ptr).Buy(None, 900.0)  # denied: block + tabort
        with db.transaction():
            loaded = db.deref(ptr)
            assert loaded.currBal == 300.0
            assert loaded.marks == 0  # rolled back with the tabort
        with db.transaction():
            db.deref(ptr).Buy(None, 550.0)  # arms MoreCred
        with db.transaction():
            db.deref(ptr).PayBill(100.0)
        with db.transaction():
            assert db.deref(ptr).credLim == 1500.0

    def test_coupling_keyword(self, any_engine_db):
        fired = []
        cls = compile_opp_class(
            """
            persistent class DeferredThing {
                int n = 0;
                event after Poke;
                trigger Later() : perpetual end after Poke ==> Note();
            }
            """,
            methods={
                "Poke": lambda self: None,
                "Note": lambda self: fired.append(1),
            },
        )
        db = any_engine_db
        with db.transaction():
            thing = db.pnew(cls)
            thing.Later()
            thing.Poke()
            assert fired == []  # deferred until commit
        assert fired == [1]

    def test_constraint_syntax(self, any_engine_db):
        from repro.errors import ConstraintViolationError

        cls = compile_opp_class(
            """
            persistent class Bounded {
                float level = 0;
                event after Fill;
                constraint capacity : within;
            }
            """,
            methods={"Fill": lambda self, amount: setattr(self, "level", self.level + amount)},
            masks={"within": lambda self: self.level <= 10.0},
        )
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(cls).ptr
        with pytest.raises(ConstraintViolationError):
            with db.transaction():
                db.deref(ptr).Fill(50.0)
        with db.transaction():
            assert db.deref(ptr).level == 0.0

    def test_inheritance_via_base_clause(self, PaperCard, any_engine_db):
        gold = compile_opp_class(
            """
            persistent class GoldPaperCard : PaperCard {
                float fee = 95;
            }
            """
        )
        db = any_engine_db
        with db.transaction():
            card = db.pnew(gold)
            ptr = card.ptr
            assert card.fee == 95.0
            card.DenyCredit()  # inherited trigger activates on derived
        with db.transaction():
            db.deref(ptr).Buy(None, 2000.0)
            # tabort propagates out of the block: swallowed by transaction()
        with db.transaction():
            assert db.deref(ptr).currBal == 0.0  # purchase denied


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class NotPersistent { }",
            "persistent class X { double weird; }",
            "persistent class X { event after A; trigger T : A ==> f(); }",  # missing ()
            "persistent class X { event after A; trigger T() : A; }",  # no ==>
            "persistent class X { gibberish here; }",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(TriggerDeclarationError):
            compile_opp_class(source)

    def test_unknown_constraint_predicate(self):
        with pytest.raises(TriggerDeclarationError, match="no predicate"):
            compile_opp_class(
                """
                persistent class X {
                    int v = 0;
                    event after F;
                    constraint c : missing_mask;
                }
                """,
                methods={"F": lambda self: None},
            )

    def test_action_literal_arguments(self, any_engine_db):
        values = []
        cls = compile_opp_class(
            """
            persistent class LitArgs {
                int n = 0;
                event after Go;
                trigger T() : perpetual after Go ==> Record(42, 'tag', 2.5);
            }
            """,
            methods={
                "Go": lambda self: None,
                "Record": lambda self, a, b, c: values.append((a, b, c)),
            },
        )
        db = any_engine_db
        with db.transaction():
            thing = db.pnew(cls)
            thing.T()
            thing.Go()
        assert values == [(42, "tag", 2.5)]
