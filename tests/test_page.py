"""Slotted-page unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError, PageFullError
from repro.storage.page import PAGE_SIZE, USABLE_END, SlottedPage


def test_new_page_is_empty():
    page = SlottedPage()
    assert page.slot_count == 0
    # the trailing CHECKSUM_SIZE bytes are reserved for the page CRC
    assert page.free_end == USABLE_END
    assert list(page.records()) == []


def test_insert_and_read():
    page = SlottedPage()
    slot = page.insert(b"hello")
    assert page.read(slot) == b"hello"
    assert page.is_live(slot)


def test_insert_returns_distinct_slots():
    page = SlottedPage()
    slots = [page.insert(f"rec-{i}".encode()) for i in range(10)]
    assert len(set(slots)) == 10
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"rec-{i}".encode()


def test_read_bad_slot_raises():
    page = SlottedPage()
    with pytest.raises(PageError):
        page.read(0)


def test_delete_tombstones_slot():
    page = SlottedPage()
    slot = page.insert(b"doomed")
    page.delete(slot)
    assert not page.is_live(slot)
    with pytest.raises(PageError):
        page.read(slot)
    with pytest.raises(PageError):
        page.delete(slot)


def test_delete_keeps_other_slot_numbers_stable():
    page = SlottedPage()
    a = page.insert(b"a")
    b = page.insert(b"b")
    page.delete(a)
    assert page.read(b) == b"b"


def test_insert_reuses_tombstoned_slot():
    page = SlottedPage()
    a = page.insert(b"a")
    page.insert(b"b")
    page.delete(a)
    c = page.insert(b"c")
    assert c == a
    assert page.read(c) == b"c"


def test_update_in_place_shrink():
    page = SlottedPage()
    slot = page.insert(b"longer-record")
    page.update(slot, b"tiny")
    assert page.read(slot) == b"tiny"


def test_update_grow_relocates_within_page():
    page = SlottedPage()
    slot = page.insert(b"small")
    other = page.insert(b"other")
    page.update(slot, b"x" * 200)
    assert page.read(slot) == b"x" * 200
    assert page.read(other) == b"other"


def test_update_deleted_slot_raises():
    page = SlottedPage()
    slot = page.insert(b"gone")
    page.delete(slot)
    with pytest.raises(PageError):
        page.update(slot, b"new")


def test_page_full_raises():
    page = SlottedPage()
    with pytest.raises(PageFullError):
        page.insert(b"x" * PAGE_SIZE)


def test_fill_page_then_overflow():
    page = SlottedPage()
    count = 0
    record = b"r" * 100
    while page.fits(len(record)):
        page.insert(record)
        count += 1
    assert count > 30
    with pytest.raises(PageFullError):
        page.insert(b"y" * 200)


def test_compact_reclaims_dead_space():
    page = SlottedPage()
    slots = [page.insert(b"z" * 300) for _ in range(10)]
    for slot in slots[::2]:
        page.delete(slot)
    free_before = page.free_space()
    page.compact()
    assert page.free_space() > free_before
    for slot in slots[1::2]:
        assert page.read(slot) == b"z" * 300


def test_update_grow_after_fragmentation_compacts():
    page = SlottedPage()
    keep = page.insert(b"k" * 100)
    doomed = [page.insert(b"d" * 700) for _ in range(5)]
    for slot in doomed:
        page.delete(slot)
    page.update(keep, b"K" * 3000)  # needs compaction to fit
    assert page.read(keep) == b"K" * 3000


def test_insert_at_specific_slot():
    page = SlottedPage()
    page.insert_at(3, b"at-three")
    assert page.read(3) == b"at-three"
    assert page.slot_count == 4
    for slot in range(3):
        assert not page.is_live(slot)


def test_insert_at_occupied_raises():
    page = SlottedPage()
    slot = page.insert(b"here")
    with pytest.raises(PageError):
        page.insert_at(slot, b"clash")


def test_roundtrip_through_raw_bytes():
    page = SlottedPage()
    slot = page.insert(b"persist-me")
    page2 = SlottedPage(bytearray(page.raw))
    assert page2.read(slot) == b"persist-me"


def test_wrong_size_raises():
    with pytest.raises(PageError):
        SlottedPage(bytearray(100))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.binary(min_size=0, max_size=300)),
            st.tuples(st.just("delete"), st.integers(0, 40)),
            st.tuples(st.just("update"), st.integers(0, 40), st.binary(max_size=300)),
        ),
        max_size=60,
    )
)
def test_page_matches_model(ops):
    """A slotted page behaves like a dict under random op sequences."""
    page = SlottedPage()
    model: dict[int, bytes] = {}
    for op in ops:
        if op[0] == "insert":
            try:
                slot = page.insert(op[1])
            except PageFullError:
                continue
            model[slot] = op[1]
        elif op[0] == "delete":
            slot = op[1]
            if slot in model:
                page.delete(slot)
                del model[slot]
        else:
            slot = op[1]
            if slot in model:
                try:
                    page.update(slot, op[2])
                except PageFullError:
                    continue
                model[slot] = op[2]
    assert dict(page.records()) == model
    # Compaction never changes contents.
    page.compact()
    assert dict(page.records()) == model
