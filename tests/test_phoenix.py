"""Phoenix-transaction tests: durable intentions that survive crashes."""

import pytest

from repro.errors import TransactionError
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Ledger(Persistent):
    entries = field(list, default=[])


def test_enqueue_then_drain_runs_handler(any_engine_db):
    db = any_engine_db
    ran = []
    db.phoenix.register_handler("note", lambda txn, payload: ran.append(payload))
    with db.transaction() as txn:
        db.phoenix.enqueue(txn, "note", {"msg": "hello"})
    assert db.phoenix.drain() == 1
    assert ran == [{"msg": "hello"}]
    assert db.phoenix.drain() == 0  # queue now empty


def test_intention_dropped_if_enqueuing_txn_aborts(any_engine_db):
    db = any_engine_db
    ran = []
    db.phoenix.register_handler("note", lambda txn, payload: ran.append(payload))
    txn = db.txn_manager.begin()
    db.phoenix.enqueue(txn, "note", "vanishes")
    db.txn_manager.abort(txn)
    assert db.phoenix.drain() == 0
    assert ran == []


def test_unregistered_kind_raises(any_engine_db):
    db = any_engine_db
    with db.transaction() as txn:
        db.phoenix.enqueue(txn, "mystery", None)
    with pytest.raises(TransactionError):
        db.phoenix.drain()


def test_failed_handler_leaves_intention_queued(any_engine_db):
    db = any_engine_db
    attempts = []

    def flaky(txn, payload):
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient failure")

    db.phoenix.register_handler("flaky", flaky)
    with db.transaction() as txn:
        db.phoenix.enqueue(txn, "flaky", None)
    with pytest.raises(RuntimeError):
        db.phoenix.drain()
    # Never-give-up: the intention is still there and succeeds on retry.
    assert db.phoenix.drain() == 1
    assert len(attempts) == 2


def test_intentions_survive_crash_and_rerun_on_open(db_path):
    """The paper's phoenix contract: restart after a crash, keep trying."""
    db = Database.open(db_path, engine="disk")
    with db.transaction() as txn:
        ptr = db.pnew(Ledger).ptr
        db.phoenix.enqueue(txn, "post-commit", {"target": ptr.rid})
    # Crash before any drain happens (the automatic post-commit drain is
    # part of the trigger system, not the raw queue).
    db.simulate_crash()

    executed = []

    # Reopen: Database.__init__ drains at open, so the handler must be
    # registered before.  We emulate "the application registers handlers
    # then opens" by registering right after construction but before a
    # manual drain; the open-time drain will fail to find the handler, so
    # open via a subclass hook instead: simplest is to drain manually.
    db2 = Database.open(db_path, engine="disk")
    db2.phoenix.register_handler(
        "post-commit", lambda txn, payload: executed.append(payload)
    )
    assert db2.phoenix.drain() == 1
    assert executed == [{"target": ptr.rid}]
    db2.close()


def test_handler_runs_in_its_own_system_transaction(any_engine_db):
    db = any_engine_db
    seen = {}

    def handler(txn, payload):
        assert txn.system
        handle = db.pnew(Ledger)
        seen["ptr"] = handle.ptr

    db.phoenix.register_handler("make", handler)
    with db.transaction() as txn:
        db.phoenix.enqueue(txn, "make", None)
    db.phoenix.drain()
    with db.transaction():
        assert db.deref(seen["ptr"]).entries == []


def test_multiple_intentions_drain_in_order(any_engine_db):
    db = any_engine_db
    order = []
    db.phoenix.register_handler("step", lambda txn, payload: order.append(payload))
    with db.transaction() as txn:
        for i in range(5):
            db.phoenix.enqueue(txn, "step", i)
    assert db.phoenix.drain() == 5
    assert order == [0, 1, 2, 3, 4]


def test_crash_during_drain_reruns_handler_exactly_once(db_path):
    """Crash after the handler ran but before the intention was removed:
    the drain transaction rolls back whole, so the reopen re-runs the
    handler — and an idempotent handler yields exactly-once at the
    application level (the paper's phoenix contract)."""
    from repro.errors import InjectedCrashError
    from repro.faults import FaultInjector

    inj = FaultInjector().crash_on("phoenix.drain.after_handler")
    db = Database.open(db_path, engine="disk", injector=inj)
    with db.transaction() as txn:
        lptr = db.pnew(Ledger).ptr
        db.phoenix.enqueue(txn, "settle", {"ledger": lptr.rid, "tok": "t1"})

    def make_handler(database):
        def settle(txn, payload):
            from repro.objects.oid import PersistentPtr

            ledger = database.deref(
                PersistentPtr(database.name, payload["ledger"])
            )
            if payload["tok"] not in ledger.entries:  # idempotent
                ledger.entries = ledger.entries + [payload["tok"]]

        return settle

    db.phoenix.register_handler("settle", make_handler(db))
    with pytest.raises(InjectedCrashError):
        db.phoenix.drain()
    db.simulate_crash()

    recovered = Database.open(db_path, engine="disk")
    with recovered.transaction() as txn:
        # The crashed drain rolled back whole: still queued, not settled.
        assert len(recovered.phoenix.pending(txn)) == 1
        assert recovered.deref(lptr).entries == []
    recovered.phoenix.register_handler("settle", make_handler(recovered))
    assert recovered.phoenix.drain() == 1  # the handler re-runs
    with recovered.transaction() as txn:
        assert recovered.phoenix.pending(txn) == []  # queue ends empty
        assert recovered.deref(lptr).entries == ["t1"]  # exactly once
    recovered.close()
