"""PostEvent semantics: wrappers, masks, fire-after-all-posted, cascades."""

import pytest

from repro.core.declarations import trigger
from repro.errors import TransactionAbort, UnknownEventError
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Machine(Persistent):
    temp = field(float, default=20.0)
    log = field(list, default=[])

    __events__ = ["before heat", "after heat", "after cool", "Alert"]
    __masks__ = {
        "hot": lambda self: self.temp > 100.0,
    }
    __triggers__ = [
        trigger(
            "LogBefore",
            "before heat",
            action=lambda self, ctx: self.log_add("before-heat"),
            perpetual=True,
        ),
        trigger(
            "LogAfter",
            "after heat",
            action=lambda self, ctx: self.log_add("after-heat"),
            perpetual=True,
        ),
        trigger(
            "Overheat",
            "after heat & hot",
            action=lambda self, ctx: self.log_add("overheat"),
            perpetual=True,
        ),
    ]

    def heat(self, amount):
        self.temp += amount

    def cool(self, amount):
        self.temp -= amount

    def log_add(self, entry):
        self.log = self.log + [entry]


class TestBeforeAfterEvents:
    def test_before_and_after_posted_around_call(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            machine = db.pnew(Machine)
            ptr = machine.ptr
            machine.LogBefore()
            machine.LogAfter()
            machine.heat(5.0)
        with db.transaction():
            assert db.deref(ptr).log == ["before-heat", "after-heat"]

    def test_before_mask_sees_pre_call_state(self, any_engine_db):
        db = any_engine_db

        class Probe(Persistent):
            v = field(int, default=0)
            seen = field(list, default=[])

            __events__ = ["before bump", "after bump"]
            __triggers__ = [
                trigger(
                    "Before",
                    "before bump",
                    action=lambda self, ctx: self.mark("pre", self.v),
                    perpetual=True,
                ),
                trigger(
                    "After",
                    "after bump",
                    action=lambda self, ctx: self.mark("post", self.v),
                    perpetual=True,
                ),
            ]

            def bump(self):
                self.v += 1

            def mark(self, tag, value):
                self.seen = self.seen + [(tag, value)]

        with db.transaction():
            probe = db.pnew(Probe)
            ptr = probe.ptr
            probe.Before()
            probe.After()
            probe.bump()
        with db.transaction():
            assert db.deref(ptr).seen == [("pre", 0), ("post", 1)]

    def test_volatile_instances_post_nothing(self, any_engine_db):
        machine = Machine()
        machine.heat(500.0)  # direct call: no handle, no events
        assert machine.log == []
        assert machine.temp == 520.0

    def test_wrapper_returns_method_value(self, any_engine_db):
        db = any_engine_db

        class Calc(Persistent):
            __events__ = ["after compute"]

            def compute(self, x):
                return x * 2

        with db.transaction():
            calc = db.pnew(Calc)
            assert calc.compute(21) == 42


class TestMasksInPosting:
    def test_mask_false_suppresses(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            machine = db.pnew(Machine)
            ptr = machine.ptr
            machine.Overheat()
            machine.heat(10.0)  # temp 30: not hot
        with db.transaction():
            assert db.deref(ptr).log == []

    def test_mask_true_fires(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            machine = db.pnew(Machine)
            ptr = machine.ptr
            machine.Overheat()
            machine.heat(200.0)
        with db.transaction():
            assert db.deref(ptr).log == ["overheat"]

    def test_mask_sees_trigger_params(self, any_engine_db):
        db = any_engine_db

        class Threshold(Persistent):
            v = field(float, default=0.0)
            fired = field(int, default=0)

            __events__ = ["after set"]
            __masks__ = {
                "above": lambda self, params: self.v > params["limit"],
            }
            __triggers__ = [
                trigger(
                    "Watch",
                    "after set & above",
                    action=lambda self, ctx: self.mark(),
                    params=("limit",),
                    perpetual=True,
                )
            ]

            def set(self, v):
                self.v = v

            def mark(self):
                self.fired += 1

        with db.transaction():
            t = db.pnew(Threshold)
            ptr = t.ptr
            t.Watch(100.0)
            t.set(50.0)
            t.set(150.0)
        with db.transaction():
            assert db.deref(ptr).fired == 1


class TestUserEvents:
    def test_post_event_by_name(self, any_engine_db):
        db = any_engine_db

        class Alarmed(Persistent):
            count = field(int, default=0)
            __events__ = ["Alert"]
            __triggers__ = [
                trigger(
                    "OnAlert",
                    "Alert",
                    action=lambda self, ctx: self.inc(),
                    perpetual=True,
                )
            ]

            def inc(self):
                self.count += 1

        with db.transaction():
            a = db.pnew(Alarmed)
            ptr = a.ptr
            a.OnAlert()
            a.post_event("Alert")
            a.post_event("Alert")
        with db.transaction():
            assert db.deref(ptr).count == 2

    def test_undeclared_user_event_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            machine = db.pnew(Machine)
            with pytest.raises(UnknownEventError):
                machine.post_event("Nonexistent")


class TestFireAfterAllPosted:
    def test_action_cannot_affect_sibling_masks(self, any_engine_db):
        """Paper: 'no triggers are fired until all triggers have had the
        basic event posted ... to prevent the action of one trigger from
        affecting the mask of another trigger.'"""
        db = any_engine_db

        class Pair(Persistent):
            flag = field(bool, default=True)
            log = field(list, default=[])

            __events__ = ["after poke"]
            __masks__ = {"flag_on": lambda self: self.flag}
            __triggers__ = [
                trigger(
                    "First",
                    "after poke & flag_on",
                    action=lambda self, ctx: self.flip_and_log("first"),
                    perpetual=True,
                ),
                trigger(
                    "Second",
                    "after poke & flag_on",
                    action=lambda self, ctx: self.flip_and_log("second"),
                    perpetual=True,
                ),
            ]

            def poke(self):
                pass

            def flip_and_log(self, tag):
                self.flag = False  # would suppress the sibling if masks ran late
                self.log = self.log + [tag]

        with db.transaction():
            pair = db.pnew(Pair)
            ptr = pair.ptr
            pair.First()
            pair.Second()
            pair.poke()
        with db.transaction():
            # Both fired: masks were evaluated before any action ran.
            assert sorted(db.deref(ptr).log) == ["first", "second"]

    def test_firing_order_is_activation_order(self, any_engine_db):
        db = any_engine_db

        class Ordered(Persistent):
            log = field(list, default=[])
            __events__ = ["Go"]
            __triggers__ = [
                trigger("T1", "Go", action=lambda s, c: s.add("one"), perpetual=True),
                trigger("T2", "Go", action=lambda s, c: s.add("two"), perpetual=True),
            ]

            def add(self, tag):
                self.log = self.log + [tag]

        with db.transaction():
            obj = db.pnew(Ordered)
            ptr = obj.ptr
            obj.T2()  # activated first
            obj.T1()
            obj.post_event("Go")
        with db.transaction():
            assert db.deref(ptr).log == ["two", "one"]


class TestCascades:
    def test_action_method_calls_cascade_triggers(self, any_engine_db):
        db = any_engine_db

        class Chain(Persistent):
            log = field(list, default=[])
            __events__ = ["after step1", "after step2"]
            __triggers__ = [
                trigger(
                    "OnStep1",
                    "after step1",
                    action=lambda self, ctx: self.step2(),
                    perpetual=True,
                ),
                trigger(
                    "OnStep2",
                    "after step2",
                    action=lambda self, ctx: self.add("cascaded"),
                    perpetual=True,
                ),
            ]

            def step1(self):
                self.add("step1")

            def step2(self):
                self.add("step2")

            def add(self, tag):
                self.log = self.log + [tag]

        with db.transaction():
            chain = db.pnew(Chain)
            ptr = chain.ptr
            chain.OnStep1()
            chain.OnStep2()
            chain.step1()
        with db.transaction():
            # step1 fired OnStep1, whose action called step2 through the
            # handle, firing OnStep2 — two levels of (conceptual) nesting.
            assert db.deref(ptr).log == ["step1", "step2", "cascaded"]


class TestOnceOnlyVsPerpetual:
    def test_once_only_deactivates_after_fire(self, any_engine_db):
        db = any_engine_db

        class Once(Persistent):
            n = field(int, default=0)
            __events__ = ["Hit"]
            __triggers__ = [
                trigger("One", "Hit", action=lambda s, c: s.inc(), perpetual=False)
            ]

            def inc(self):
                self.n += 1

        with db.transaction():
            obj = db.pnew(Once)
            ptr = obj.ptr
            obj.One()
            obj.post_event("Hit")
            obj.post_event("Hit")
        with db.transaction():
            assert db.deref(ptr).n == 1
            assert db.trigger_system.active_triggers(ptr) == []

    def test_perpetual_keeps_firing(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            machine = db.pnew(Machine)
            ptr = machine.ptr
            machine.Overheat()
            machine.heat(200.0)
            machine.heat(10.0)
        with db.transaction():
            assert db.deref(ptr).log == ["overheat", "overheat"]
            assert len(db.trigger_system.active_triggers(ptr)) == 1


class TestTabort:
    def test_tabort_from_action_aborts_transaction(self, any_engine_db):
        db = any_engine_db

        class Guarded(Persistent):
            v = field(int, default=0)
            __events__ = ["after set"]
            __masks__ = {"neg": lambda self: self.v < 0}
            __triggers__ = [
                trigger(
                    "NoNegative",
                    "after set & neg",
                    action=lambda self, ctx: ctx.tabort("negative"),
                    perpetual=True,
                )
            ]

            def set(self, v):
                self.v = v

        with db.transaction():
            ptr = db.pnew(Guarded).ptr
            db.deref(ptr).NoNegative()
        with db.transaction():
            db.deref(ptr).set(5)
        with db.transaction():
            db.deref(ptr).set(-3)  # fires, tabort
        with db.transaction():
            assert db.deref(ptr).v == 5  # the -3 transaction rolled back


class TestPostingStats:
    def test_skip_counter_for_triggerless_objects(self, any_engine_db):
        db = any_engine_db
        db.trigger_system.stats.reset()
        with db.transaction():
            machine = db.pnew(Machine)
            machine.heat(1.0)  # no active triggers: posting short-circuits
        stats = db.trigger_system.stats
        assert stats.skipped_no_triggers >= 1
        assert stats.fsm_advances == 0

    def test_state_writes_counted(self, any_engine_db):
        db = any_engine_db
        db.trigger_system.stats.reset()
        with db.transaction():
            machine = db.pnew(Machine)
            machine.LogAfter()
            machine.heat(1.0)
        assert db.trigger_system.stats.state_writes >= 1
        assert db.trigger_system.stats.firings == 1


class BatchCounter(Persistent):
    """Fixture for the batch-posting tests: counts Alert firings."""

    count = field(int, default=0)
    __events__ = ["Alert", "Tick"]
    __triggers__ = [
        trigger(
            "OnAlert",
            "Alert",
            action=lambda self, ctx: self.inc(),
            perpetual=True,
        ),
        trigger(
            "OnceTick",
            "Tick",
            action=lambda self, ctx: self.inc(),
            perpetual=False,
        ),
    ]

    def inc(self):
        self.count += 1


class TestPostMany:
    def test_batch_equals_per_event_posting(self, any_engine_db):
        """post_many(pairs) commits exactly the state a per-event loop
        does — same advance order, same firings — and counts every
        batched posting in ``posting.batched``."""
        db = any_engine_db
        with db.transaction():
            a, b = db.pnew(BatchCounter), db.pnew(BatchCounter)
            a_ptr, b_ptr = a.ptr, b.ptr
            a.OnAlert()
            b.OnAlert()
        db.trigger_system.stats.reset()
        with db.transaction():
            fired = db.post_many(
                [(a_ptr, "Alert"), (b_ptr, "Alert"), (a_ptr, "Alert")]
            )
        assert fired == 3
        stats = db.trigger_system.stats
        assert stats.batched == 3
        assert stats.firings == 3
        assert db.metrics.snapshot()["posting.batched"] == 3
        with db.transaction():
            assert db.deref(a_ptr).count == 2
            assert db.deref(b_ptr).count == 1

    def test_accepts_handles_and_pointers(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            handle = db.pnew(BatchCounter)
            handle.OnAlert()
            ptr = handle.ptr
        with db.transaction():
            handle = db.deref(ptr)
            assert db.post_many([(handle, "Alert"), (ptr, "Alert")]) == 2
        with db.transaction():
            assert db.deref(ptr).count == 2

    def test_unknown_event_rejected_before_anything_posts(self, any_engine_db):
        """Name validation is up-front: a bad name anywhere in the batch
        aborts the call before the first event is posted."""
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(BatchCounter).ptr
            db.deref(ptr).OnAlert()
        db.trigger_system.stats.reset()
        with db.transaction():
            with pytest.raises(UnknownEventError, match="Nonexistent"):
                db.post_many([(ptr, "Alert"), (ptr, "Nonexistent")])
        assert db.trigger_system.stats.events_posted == 0
        with db.transaction():
            assert db.deref(ptr).count == 0

    def test_batch_caches_dropped_after_firing(self, any_engine_db):
        """A once-only trigger deactivated by the first firing must not
        fire again later in the same batch: the batch-local index cache
        is invalidated whenever a posting fired."""
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(BatchCounter).ptr
            db.deref(ptr).OnceTick()
        with db.transaction():
            fired = db.post_many([(ptr, "Tick"), (ptr, "Tick"), (ptr, "Tick")])
        assert fired == 1
        with db.transaction():
            assert db.deref(ptr).count == 1

    def test_session_surface_and_mvcc_buffers(self, db_path):
        """Session.post_many lands in the calling session's transaction,
        and under trigger_cc="mvcc" batched postings go through the
        advance buffers (zero state X-locks) like single postings."""
        from repro.objects.database import Database

        db = Database.open(db_path, engine="mm", trigger_cc="mvcc")
        try:
            with db.transaction():
                ptr = db.pnew(BatchCounter).ptr
                db.deref(ptr).OnAlert()
            session = db.session("batcher")
            with session.transaction():
                assert session.post_many([(ptr, "Alert"), (ptr, "Alert")]) == 2
            with db.transaction():
                assert db.deref(ptr).count == 2
            assert db.trigger_system.versions.stats.buffered_advances >= 2
        finally:
            db.close()
