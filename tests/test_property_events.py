"""Property-based tests over *randomly generated* event expressions.

The sampled-expression tests elsewhere check a fixed family; here
hypothesis builds arbitrary ASTs (sequences, unions, stars, plus, masks,
relative) and verifies:

* the compiled FSM agrees with the naive rescanning oracle on random
  streams (with random-but-recorded mask outcomes);
* minimization preserves behaviour and never grows the machine;
* unparse∘parse is the identity on the AST;
* anchored machines accept a strict subset of unanchored ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rescan import RescanDetector
from repro.events.ast import (
    BasicEvent,
    EventExpr,
    Masked,
    Plus,
    Relative,
    Seq,
    Star,
    Union,
)
from repro.events.compile import compile_expression
from repro.events.parser import parse

SYMBOLS = ["A", "B", "C"]
MASKS = ["m1", "m2"]


def _leaf():
    return st.sampled_from([BasicEvent("user", s) for s in SYMBOLS])


def _expr(children):
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(lambda p: Seq(tuple(p))),
        st.lists(children, min_size=2, max_size=3).map(lambda p: Union(tuple(p))),
        children.map(Star),
        children.map(Plus),
        st.tuples(children, st.sampled_from(MASKS)).map(lambda t: Masked(*t)),
        st.tuples(children, children).map(lambda t: Relative(*t)),
    )


EXPRS = st.recursive(_leaf(), _expr, max_leaves=6)
STREAMS = st.lists(st.sampled_from(SYMBOLS), max_size=30)
MASK_SEEDS = st.integers(0, 2**16)


def _non_nullable(expr: EventExpr) -> bool:
    return not expr.nullable()


class _RecordedMasks:
    """Random mask outcomes, recorded so the oracle can replay them."""

    def __init__(self, seed: int):
        import random

        self.rng = random.Random(seed)
        self.current: dict[str, bool] = {}

    def fresh(self) -> dict[str, bool]:
        self.current = {m: self.rng.random() < 0.5 for m in MASKS}
        return dict(self.current)

    def evaluate(self, name: str) -> bool:
        return self.current[name]


@settings(max_examples=200, deadline=None)
@given(expr=EXPRS.filter(_non_nullable), stream=STREAMS, seed=MASK_SEEDS)
def test_fsm_agrees_with_rescan_oracle(expr, stream, seed):
    compiled = compile_expression(expr, SYMBOLS)
    masks = _RecordedMasks(seed)
    state = compiled.fsm.start
    # Quiesce once for expressions with start-state obligations; the
    # oracle gets the same activation-time snapshot.
    activation = masks.fresh()
    oracle = RescanDetector(expr, activation_masks=activation)
    state, _ = compiled.fsm.quiesce(state, masks.evaluate)
    for symbol in stream:
        outcomes = masks.fresh()
        result = compiled.fsm.advance(state, symbol, masks.evaluate)
        state = result.state
        oracle_hit = oracle.post(symbol, outcomes)
        assert result.accepted == oracle_hit, (
            expr.unparse(),
            stream,
            symbol,
            outcomes,
        )


@settings(max_examples=150, deadline=None)
@given(expr=EXPRS.filter(_non_nullable), stream=STREAMS, seed=MASK_SEEDS)
def test_minimization_preserves_behaviour(expr, stream, seed):
    small = compile_expression(expr, SYMBOLS, minimize=True)
    big = compile_expression(expr, SYMBOLS, minimize=False)
    assert len(small.fsm) <= len(big.fsm)
    masks_a, masks_b = _RecordedMasks(seed), _RecordedMasks(seed)
    state_a, state_b = small.fsm.start, big.fsm.start
    masks_a.fresh()
    masks_b.fresh()
    state_a, _ = small.fsm.quiesce(state_a, masks_a.evaluate)
    state_b, _ = big.fsm.quiesce(state_b, masks_b.evaluate)
    for symbol in stream:
        masks_a.fresh()
        masks_b.current = dict(masks_a.current)
        result_a = small.fsm.advance(state_a, symbol, masks_a.evaluate)
        result_b = big.fsm.advance(state_b, symbol, masks_b.evaluate)
        assert result_a.accepted == result_b.accepted
        state_a, state_b = result_a.state, result_b.state


@settings(max_examples=200, deadline=None)
@given(expr=EXPRS)
def test_unparse_parse_roundtrip(expr):
    text = expr.unparse()
    reparsed, anchored = parse(text)
    assert not anchored
    assert reparsed == expr


@settings(max_examples=100, deadline=None)
@given(expr=EXPRS.filter(_non_nullable), stream=STREAMS)
def test_anchored_accepts_subset_of_unanchored(expr, stream):
    """Every anchored match is also an unanchored match (never vice versa
    being required)."""
    unanchored = compile_expression(expr, SYMBOLS)
    anchored = compile_expression(expr, SYMBOLS, anchored=True)
    state_u, state_a = unanchored.fsm.start, anchored.fsm.start
    evaluate = lambda name: True
    state_u, _ = unanchored.fsm.quiesce(state_u, evaluate)
    state_a, _ = anchored.fsm.quiesce(state_a, evaluate)
    for symbol in stream:
        result_u = unanchored.fsm.advance(state_u, symbol, evaluate)
        result_a = anchored.fsm.advance(state_a, symbol, evaluate)
        if result_a.accepted:
            assert result_u.accepted
        state_u, state_a = result_u.state, result_a.state


@settings(max_examples=100, deadline=None)
@given(expr=EXPRS.filter(_non_nullable), stream=STREAMS)
def test_machine_is_total_over_declared_events(expr, stream):
    """Unanchored machines never get stuck: every declared symbol is
    either consumed or explicitly ignored, and state numbers stay valid."""
    compiled = compile_expression(expr, SYMBOLS)
    state = compiled.fsm.start
    evaluate = lambda name: False
    state, _ = compiled.fsm.quiesce(state, evaluate)
    for symbol in stream:
        result = compiled.fsm.advance(state, symbol, evaluate)
        assert 0 <= result.state < len(compiled.fsm)
        assert result.consumed  # unanchored machines are complete
        state = result.state
