"""Property-based check: ``minimize_fsm`` preserves the accepted language.

Random event expressions are compiled twice — once with the
minimize+prune pipeline, once raw — and both machines are driven through
random event streams under the same mask oracle.  At every step the
accept outcome must agree, and for anchored machines so must deadness.
This is the semantic contract the static analyzer leans on: subsumption
verdicts (ODE020/ODE021) are computed on minimized machines but claimed
about the declared expressions.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import EventError
from repro.events.compile import compile_expression
from repro.events.fsm import DEAD

DECLS = ["A", "B", "C"]
MASKS = ["m", "n"]

_atoms = st.sampled_from(["A", "B", "C", "(A & m)", "(B & n)", "(C & m)"])

_expressions = st.recursive(
    _atoms,
    lambda child: st.one_of(
        st.tuples(child, child).map(lambda t: f"({t[0]}, {t[1]})"),
        st.tuples(child, child).map(lambda t: f"({t[0]} || {t[1]})"),
        child.map(lambda e: f"*({e})"),
        child.map(lambda e: f"+({e})"),
        st.tuples(child, child).map(lambda t: f"relative({t[0]}, {t[1]})"),
    ),
    max_leaves=5,
)

# "D" is out-of-alphabet: both machines must ignore it identically.
_streams = st.lists(st.sampled_from(["A", "B", "C", "D"]), max_size=10)

_mask_values = st.fixed_dictionaries(
    {name: st.booleans() for name in MASKS}
)


def _compile_both(text):
    """Compile raw and minimized; discards nullable random expressions
    (the compiler rejects them: a trigger cannot fire on an empty match)."""
    try:
        raw = compile_expression(
            text, DECLS, known_masks=MASKS, minimize=False
        ).fsm
        small = compile_expression(
            text, DECLS, known_masks=MASKS, minimize=True
        ).fsm
    except EventError:
        assume(False)
    return raw, small


def _trace(fsm, stream, mask_values):
    """Drive one machine; returns the per-step (accepted, dead) outcomes."""
    evaluate = lambda name: mask_values.get(name, False)
    state, _ = fsm.quiesce(fsm.start, evaluate)
    outcomes = [(False, state == DEAD)]
    for symbol in stream:
        result = fsm.advance(state, symbol, evaluate)
        state = result.state
        outcomes.append((result.accepted, state == DEAD))
    return outcomes


class TestMinimizePreservesLanguage:
    @settings(max_examples=80, deadline=None)
    @given(text=_expressions, stream=_streams, mask_values=_mask_values)
    def test_unanchored_outcomes_identical(self, text, stream, mask_values):
        raw, small = _compile_both(text)
        assert len(small) <= len(raw)
        assert _trace(raw, stream, mask_values) == _trace(
            small, stream, mask_values
        )

    @settings(max_examples=80, deadline=None)
    @given(text=_expressions, stream=_streams, mask_values=_mask_values)
    def test_anchored_outcomes_identical(self, text, stream, mask_values):
        raw, small = _compile_both(f"^({text})")
        assert _trace(raw, stream, mask_values) == _trace(
            small, stream, mask_values
        )

    @settings(max_examples=40, deadline=None)
    @given(text=_expressions, stream=_streams, mask_values=_mask_values)
    def test_minimize_twice_changes_nothing(self, text, stream, mask_values):
        from repro.events.minimize import minimize_fsm

        _, small = _compile_both(text)
        again = minimize_fsm(small)
        assert len(again) == len(small)
        assert _trace(again, stream, mask_values) == _trace(
            small, stream, mask_values
        )
