"""Model-based property tests of the full trigger system.

An independent pure-Python model reimplements the *specified* semantics of
the paper's two credit-card triggers (DenyCredit: perpetual immediate
tabort on over-limit buys; AutoRaiseLimit: once-only relative pattern) and
random operation batches are applied to both the real database and the
model.  Invariants:

* committed balances/limits match the model exactly;
* transactions aborted by DenyCredit leave no trace (including the FSM
  arming that happened earlier in the same transaction);
* a simulated crash preserves exactly the committed prefix, and the
  reopened database continues to agree with the model.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TransactionAbort
from repro.objects.database import Database
from repro.workloads.credit_card import CredCard

# One batch = a list of operations executed in one transaction, plus
# whether the user aborts at the end.
_OP = st.one_of(
    st.tuples(st.just("buy"), st.floats(1.0, 500.0)),
    st.tuples(st.just("pay"), st.floats(1.0, 300.0)),
)
_BATCH = st.tuples(st.lists(_OP, min_size=1, max_size=4), st.booleans())
_SCRIPT = st.lists(_BATCH, max_size=12)

LIMIT = 1000.0
RAISE_BY = 400.0


class _Model:
    """Executable specification of the two paper triggers."""

    def __init__(self):
        self.balance = 0.0
        self.limit = LIMIT
        self.armed = False
        self.raise_active = True

    def apply_batch(self, ops, user_aborts):
        balance, limit = self.balance, self.limit
        armed, raise_active = self.armed, self.raise_active
        for op, amount in ops:
            if op == "buy":
                balance += amount
                if balance > limit:
                    return  # DenyCredit: tabort, whole batch discarded
                if raise_active and not armed and balance > 0.8 * limit:
                    armed = True  # MoreCred() held at this buy
            else:
                balance -= amount
                if raise_active and armed:
                    limit += RAISE_BY  # AutoRaiseLimit fires, once-only
                    raise_active = False
                    armed = False
        if user_aborts:
            return
        self.balance, self.limit = balance, limit
        self.armed, self.raise_active = armed, raise_active


def _apply_batch_real(db, ptr, ops, user_aborts):
    try:
        with db.transaction():
            card = db.deref(ptr)
            for op, amount in ops:
                if op == "buy":
                    card.buy(None, amount)
                else:
                    card.pay_bill(amount)
            if user_aborts:
                raise TransactionAbort("user abort")
    except TransactionAbort:
        pass


def _assert_agrees(db, ptr, model):
    with db.transaction():
        card = db.deref(ptr)
        assert card.curr_bal == pytest.approx(model.balance)
        assert card.cred_lim == pytest.approx(model.limit)
        names = {
            info.name for _, _, info in db.trigger_system.active_triggers(ptr)
        }
        assert ("AutoRaiseLimit" in names) == model.raise_active


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT)
def test_trigger_system_matches_model(tmp_path_factory, script):
    path = str(tmp_path_factory.mktemp("model") / "bank")
    db = Database.open(path, engine="mm")
    try:
        with db.transaction():
            handle = db.pnew(CredCard, cred_lim=LIMIT)
            ptr = handle.ptr
            handle.DenyCredit()
            handle.AutoRaiseLimit(RAISE_BY)
        model = _Model()
        for ops, user_aborts in script:
            _apply_batch_real(db, ptr, ops, user_aborts)
            model.apply_batch(ops, user_aborts)
            _assert_agrees(db, ptr, model)
    finally:
        db.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(script=_SCRIPT, crash_after=st.integers(0, 12))
def test_crash_preserves_committed_prefix(tmp_path_factory, script, crash_after):
    path = str(tmp_path_factory.mktemp("crash") / "bank")
    db = Database.open(path, engine="disk")
    with db.transaction():
        handle = db.pnew(CredCard, cred_lim=LIMIT)
        ptr = handle.ptr
        handle.DenyCredit()
        handle.AutoRaiseLimit(RAISE_BY)
    model = _Model()
    for index, (ops, user_aborts) in enumerate(script):
        if index == crash_after:
            break
        _apply_batch_real(db, ptr, ops, user_aborts)
        model.apply_batch(ops, user_aborts)
    db.simulate_crash()

    db2 = Database.open(path, engine="disk")
    try:
        _assert_agrees(db2, ptr, model)
        # The recovered database keeps agreeing when the tail is replayed.
        for ops, user_aborts in script[min(crash_after, len(script)):]:
            _apply_batch_real(db2, ptr, ops, user_aborts)
            model.apply_batch(ops, user_aborts)
        _assert_agrees(db2, ptr, model)
        with db2.transaction():
            assert db2.trigger_system.verify_integrity() == []
    finally:
        db2.close()
