"""eventRep registry tests (paper Section 5.2)."""

from repro.core.registry import EventRegistry, EventRep


class TestAssignment:
    def test_same_event_same_integer(self):
        registry = EventRegistry()
        a = registry.assign("CredCard", "after Buy")
        b = registry.assign("CredCard", "after Buy")
        assert a == b

    def test_distinct_events_distinct_integers(self):
        registry = EventRegistry()
        nums = {
            registry.assign("CredCard", "after Buy"),
            registry.assign("CredCard", "after PayBill"),
            registry.assign("CredCard", "BigBuy"),
            registry.assign("Stock", "after Buy"),  # different owner class
        }
        assert len(nums) == 4

    def test_multiple_inheritance_cannot_collide(self):
        """The Section 6 lesson: per-class dense numbering collided under
        multiple inheritance; globally-unique assignment cannot."""
        registry = EventRegistry()
        base1 = registry.assign("Base1", "after f")
        base2 = registry.assign("Base2", "after g")
        assert base1 != base2

    def test_eventrep_object_assigns_via_registry(self):
        registry = EventRegistry()
        rep1 = EventRep("CredCard", "after Buy", registry)
        rep2 = EventRep("CredCard", "after Buy", registry)
        assert rep1.eventnum == rep2.eventnum
        assert "after Buy" in repr(rep1)

    def test_lookup_without_assignment(self):
        registry = EventRegistry()
        assert registry.lookup("X", "y") is None
        num = registry.assign("X", "y")
        assert registry.lookup("X", "y") == num

    def test_describe(self):
        registry = EventRegistry()
        num = registry.assign("CredCard", "after Buy")
        assert registry.describe(num) == "CredCard.after Buy"
        assert "unknown" in registry.describe(9999)

    def test_len_counts_distinct(self):
        registry = EventRegistry()
        registry.assign("A", "x")
        registry.assign("A", "x")
        registry.assign("A", "y")
        assert len(registry) == 2

    def test_clear_resets(self):
        registry = EventRegistry()
        registry.assign("A", "x")
        registry.clear()
        assert len(registry) == 0
        assert registry.lookups == 0

    def test_lookup_instrumentation(self):
        registry = EventRegistry()
        registry.assign("A", "x")
        registry.lookup("A", "x")
        assert registry.lookups == 2

    def test_assignment_is_deterministic_per_order(self):
        """Recompiling the same declarations yields the same integers —
        the property that lets persistent FSM state numbers stay valid."""
        r1, r2 = EventRegistry(), EventRegistry()
        for registry in (r1, r2):
            for cls, symbol in [("C", "after a"), ("C", "after b"), ("D", "u")]:
                registry.assign(cls, symbol)
        assert r1.lookup("D", "u") == r2.lookup("D", "u")
