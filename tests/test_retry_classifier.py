"""The unified retry classifier and ``Session.run``'s use of it."""

import random
import time

import pytest

from repro.errors import (
    DeadlockError,
    InjectedCrashError,
    LockTimeoutError,
    ReadOnlyStorageError,
    TransactionDeadlineError,
    TransientIOError,
    WaitPoisonedError,
)
from repro.faults.retry import (
    DEFAULT_UNIFIED_RETRY,
    RetryClass,
    RetryState,
    UnifiedRetryPolicy,
    classify,
)


class TestClassify:
    @pytest.mark.parametrize(
        "exc, expected",
        [
            (DeadlockError(1, (1, 2, 1)), RetryClass.DEADLOCK),
            (LockTimeoutError("slow"), RetryClass.LOCK_TIMEOUT),
            (TransientIOError(5, "hiccup"), RetryClass.TRANSIENT_IO),
            (OSError(5, "raw"), RetryClass.TRANSIENT_IO),
            (TransactionDeadlineError("late"), RetryClass.FATAL),
            (WaitPoisonedError("dead holder"), RetryClass.FATAL),
            (ReadOnlyStorageError("degraded"), RetryClass.FATAL),
            (InjectedCrashError("wal.force", 3), RetryClass.FATAL),
            (ValueError("bug"), RetryClass.FATAL),
        ],
    )
    def test_mapping(self, exc, expected):
        assert classify(exc) is expected

    def test_fatal_is_the_only_non_retryable_class(self):
        assert not RetryClass.FATAL.retryable
        for klass in (
            RetryClass.DEADLOCK,
            RetryClass.LOCK_TIMEOUT,
            RetryClass.TRANSIENT_IO,
        ):
            assert klass.retryable

    def test_specific_beats_general(self):
        """TransactionDeadlineError and WaitPoisonedError subclass
        retryable families; the classifier must check the leaves first."""
        from repro.errors import LockError, TransactionError

        assert isinstance(WaitPoisonedError("x"), LockError)
        assert isinstance(TransactionDeadlineError("x"), TransactionError)
        assert classify(WaitPoisonedError("x")) is RetryClass.FATAL
        assert classify(TransactionDeadlineError("x")) is RetryClass.FATAL


class TestPolicy:
    def test_default_budgets(self):
        assert DEFAULT_UNIFIED_RETRY.budget(RetryClass.DEADLOCK) == 5
        assert DEFAULT_UNIFIED_RETRY.budget(RetryClass.LOCK_TIMEOUT) == 2
        assert DEFAULT_UNIFIED_RETRY.budget(RetryClass.TRANSIENT_IO) == 3
        assert DEFAULT_UNIFIED_RETRY.budget(RetryClass.FATAL) == 0

    def test_with_budget_does_not_mutate_the_default(self):
        widened = DEFAULT_UNIFIED_RETRY.with_budget(RetryClass.DEADLOCK, 50)
        assert widened.budget(RetryClass.DEADLOCK) == 50
        assert DEFAULT_UNIFIED_RETRY.budget(RetryClass.DEADLOCK) == 5
        # The other budgets carry over.
        assert widened.budget(RetryClass.TRANSIENT_IO) == 3

    def test_delay_is_jittered_capped_and_replayable(self):
        policy = UnifiedRetryPolicy()
        a, b = random.Random(42), random.Random(42)
        for attempt in range(1, 20):
            delay = policy.delay(attempt, a)
            assert 0.0 <= delay <= policy.cap
            assert delay == policy.delay(attempt, b)  # same seed, same jitter

    def test_delay_grows_until_the_cap(self):
        policy = UnifiedRetryPolicy(backoff=0.001, multiplier=2.0, cap=0.004)

        class Top:
            def uniform(self, lo, hi):
                return hi

        assert policy.delay(1, Top()) == pytest.approx(0.001)
        assert policy.delay(2, Top()) == pytest.approx(0.002)
        assert policy.delay(10, Top()) == pytest.approx(0.004)  # capped


class TestRetryState:
    def test_budget_consumed_per_class(self):
        state = RetryState(UnifiedRetryPolicy(budgets={RetryClass.DEADLOCK: 2}))
        assert state.consume(DeadlockError(1, (1,))) == (RetryClass.DEADLOCK, True)
        assert state.consume(DeadlockError(1, (1,))) == (RetryClass.DEADLOCK, True)
        assert state.consume(DeadlockError(1, (1,))) == (RetryClass.DEADLOCK, False)

    def test_classes_draw_from_separate_budgets(self):
        state = RetryState(
            UnifiedRetryPolicy(
                budgets={RetryClass.DEADLOCK: 1, RetryClass.TRANSIENT_IO: 1}
            )
        )
        assert state.consume(DeadlockError(1, (1,)))[1]
        assert state.consume(TransientIOError(5, "x"))[1]  # separate budget
        assert not state.consume(DeadlockError(1, (1,)))[1]
        assert state.total_attempts == 3

    def test_fatal_never_retries_and_consumes_nothing(self):
        state = RetryState()
        assert state.consume(ValueError("bug")) == (RetryClass.FATAL, False)
        assert state.total_attempts == 0


class TestSessionRunClassifier:
    """``Session.run`` end-to-end against each class (mm engine: fast)."""

    def test_transient_io_is_retried_and_counted(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError(5, "hiccup escaping the storage layer")
            return "done"

        assert db.default_session().run(body) == "done"
        assert len(calls) == 3
        assert db.metrics.counter("retries.transient_io").value == 2

    def test_lock_timeout_is_retried_within_its_budget(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            if len(calls) == 1:
                raise LockTimeoutError("holder was slow")
            return "done"

        assert db.default_session().run(body) == "done"
        assert db.metrics.counter("retries.lock_timeout").value == 1

    def test_exhausted_budget_reraises_and_counts(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            raise TransientIOError(5, "always")

        with pytest.raises(TransientIOError):
            db.default_session().run(body)
        # 1 initial attempt + the class's budget of retries.
        assert len(calls) == 1 + DEFAULT_UNIFIED_RETRY.budget(RetryClass.TRANSIENT_IO)
        assert db.session_stats.retry_exhausted == 1

    def test_fatal_errors_are_not_retried(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            raise ReadOnlyStorageError("the medium died")

        with pytest.raises(ReadOnlyStorageError):
            db.default_session().run(body)
        assert len(calls) == 1
        assert db.session_stats.retry_exhausted == 0  # fatal, not exhausted

    def test_retries_kwarg_still_overrides_the_deadlock_budget(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            raise DeadlockError(1, (1, 2, 1))

        with pytest.raises(DeadlockError):
            db.default_session().run(body, retries=2)
        assert len(calls) == 3  # 1 + 2 retries, not the default 5
        # Retries, not victims: the third attempt exhausted its budget and
        # re-raised, so it lands in retry_exhausted, not deadlock_retries.
        assert db.session_stats.deadlock_retries == 2
        assert db.session_stats.retry_exhausted == 1

    def test_custom_policy_budget(self, mm_db):
        db = mm_db
        calls = []
        policy = UnifiedRetryPolicy(
            budgets={RetryClass.TRANSIENT_IO: 1}, backoff=0.0
        )

        def body(txn):
            calls.append(1)
            raise TransientIOError(5, "always")

        with pytest.raises(TransientIOError):
            db.default_session().run(body, policy=policy)
        assert len(calls) == 2


class TestSessionRunDeadline:
    def test_deadline_bounds_the_retry_loop(self, mm_db):
        db = mm_db
        calls = []

        def body(txn):
            calls.append(1)
            time.sleep(0.03)
            raise DeadlockError(1, (1, 2, 1))

        t0 = time.monotonic()
        with pytest.raises(TransactionDeadlineError) as excinfo:
            db.default_session().run(body, retries=10_000, deadline=0.05)
        # The loop stopped on the deadline, not the (huge) retry budget.
        assert time.monotonic() - t0 < 5.0
        assert 1 <= len(calls) < 100
        assert "deadline expired" in str(excinfo.value)

    def test_deadline_registered_with_the_lock_manager(self, mm_db):
        db = mm_db
        seen = {}

        def body(txn):
            seen["deadline"] = db.storage.lock_manager._deadlines.get(txn.txid)
            return txn.txid

        txid = db.default_session().run(body, deadline=30.0)
        assert seen["deadline"] is not None
        # Commit released locks and cleared the registry entry.
        assert txid not in db.storage.lock_manager._deadlines

    def test_no_deadline_registers_nothing(self, mm_db):
        db = mm_db

        def body(txn):
            assert db.storage.lock_manager._deadlines == {}

        db.default_session().run(body)

    def test_successful_body_beats_its_deadline(self, mm_db):
        db = mm_db
        assert db.default_session().run(lambda txn: "ok", deadline=30.0) == "ok"
