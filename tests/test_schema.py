"""Field-declaration and Persistent-base tests."""

import pytest

from repro.errors import SchemaError
from repro.objects.metatype import global_type_registry
from repro.objects.oid import NULL_PTR, PersistentPtr
from repro.objects.persistent import Persistent, fields_of
from repro.objects.schema import collect_fields, field


class Point(Persistent):
    x = field(float, default=0.0)
    y = field(float, default=0.0)
    label = field(str, default="origin")


class Labeled(Persistent):
    name = field(str)
    ref = field(PersistentPtr, default=NULL_PTR)
    tags = field(list, default=[])
    meta = field(dict, default={})


class Derived(Point):
    z = field(float, default=0.0)


class TestFieldDescriptor:
    def test_defaults_applied(self):
        p = Point()
        assert (p.x, p.y, p.label) == (0.0, 0.0, "origin")

    def test_kwargs_override_defaults(self):
        p = Point(x=1.5, label="moved")
        assert p.x == 1.5
        assert p.label == "moved"

    def test_unknown_kwarg_raises(self):
        with pytest.raises(SchemaError, match="no field"):
            Point(w=3)

    def test_type_check_on_assignment(self):
        p = Point()
        with pytest.raises(SchemaError):
            p.label = 42

    def test_int_accepted_for_float_and_coerced(self):
        p = Point(x=2)
        assert p.x == 2.0
        assert isinstance(p.x, float)

    def test_bool_rejected_for_int_field(self):
        class Counted(Persistent):
            n = field(int, default=0)

        c = Counted()
        with pytest.raises(SchemaError):
            c.n = True

    def test_none_allowed_when_nullable(self):
        class Maybe(Persistent):
            v = field(str, default=None)

        assert Maybe().v is None

    def test_not_nullable_rejects_none(self):
        class Req(Persistent):
            v = field(str, default="x", nullable=False)

        r = Req()
        with pytest.raises(SchemaError):
            r.v = None

    def test_unset_field_raises_attribute_error(self):
        item = Labeled.__new__(Labeled)
        with pytest.raises(AttributeError):
            _ = item.name

    def test_container_defaults_not_shared(self):
        a = Labeled(name="a")
        b = Labeled(name="b")
        a.tags.append("x")
        assert b.tags == []

    def test_unsupported_field_type_raises(self):
        with pytest.raises(SchemaError):
            field(set)


class TestSchemaCollection:
    def test_collect_fields_includes_bases_first(self):
        names = list(collect_fields(Derived))
        assert names.index("x") < names.index("z")
        assert set(names) == {"x", "y", "label", "z"}

    def test_fields_of_requires_persistent(self):
        with pytest.raises(SchemaError):
            fields_of(int)

    def test_metatype_registered_on_subclass(self):
        assert global_type_registry().find("Point") is Point.__metatype__
        assert Point.__metatype__.fields.keys() == {"x", "y", "label"}


class TestRoundtripHelpers:
    def test_to_fields_only_declared(self):
        p = Point(x=1.0)
        p.__dict__["_p_ptr"] = "not-a-field"
        assert set(p.to_fields()) == {"x", "y", "label"}

    def test_from_fields_bypasses_init(self):
        calls = []

        class Tracked(Persistent):
            v = field(int, default=0)

            def __init__(self, **kw):
                calls.append(1)
                super().__init__(**kw)

        t = Tracked.from_fields({"v": 7})
        assert t.v == 7
        assert calls == []

    def test_from_fields_ignores_dropped_fields(self):
        p = Point.from_fields({"x": 1.0, "removed_field": 9})
        assert p.x == 1.0
        assert "removed_field" not in p.__dict__

    def test_from_fields_validates(self):
        with pytest.raises(SchemaError):
            Point.from_fields({"label": 123})

    def test_repr_shows_fields(self):
        assert "label='origin'" in repr(Point())
