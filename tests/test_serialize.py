"""Serialization tests: tagged values, object records, pointers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.objects.oid import NULL_PTR, PersistentPtr
from repro.objects.serialize import (
    FLAG_HAS_TRIGGERS,
    decode_object,
    decode_value,
    encode_object,
    encode_value,
    peek_flags,
)


def roundtrip(value):
    out = bytearray()
    encode_value(value, out)
    decoded, pos = decode_value(bytes(out), 0)
    assert pos == len(out)
    return decoded


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            -1,
            2**40,
            3.14,
            float("inf"),
            True,
            False,
            "",
            "hello",
            "uniçode ✓",
            b"",
            b"\x00\xff",
            [],
            [1, "two", 3.0, None],
            {},
            {"k": [1, {"nested": b"bytes"}]},
            PersistentPtr("bank", 42),
            NULL_PTR,
            [PersistentPtr("a", 1), PersistentPtr("b", 2)],
        ],
    )
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_bool_stays_bool(self):
        assert roundtrip(True) is True
        assert isinstance(roundtrip(True), bool)

    def test_int_stays_int(self):
        assert isinstance(roundtrip(1), int)
        assert not isinstance(roundtrip(1), bool)

    def test_unserializable_raises(self):
        with pytest.raises(SerializationError):
            roundtrip(object())

    def test_non_string_dict_key_raises(self):
        with pytest.raises(SerializationError):
            roundtrip({1: "x"})

    def test_unknown_tag_raises(self):
        with pytest.raises(SerializationError):
            decode_value(b"\xfa", 0)


_VALUES = st.recursive(
    st.one_of(
        st.none(),
        st.integers(-(2**62), 2**62),
        st.floats(allow_nan=False),
        st.booleans(),
        st.text(max_size=40),
        st.binary(max_size=40),
        st.builds(PersistentPtr, st.text(max_size=10), st.integers(-1, 2**40)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


@settings(max_examples=120, deadline=None)
@given(value=_VALUES)
def test_value_roundtrip_property(value):
    assert roundtrip(value) == value


class TestObjectRecords:
    def test_roundtrip(self):
        fields = {"name": "Narain", "balance": 12.5, "tags": ["a", "b"]}
        raw = encode_object("CredCard", fields, flags=0)
        type_name, decoded, flags = decode_object(raw)
        assert type_name == "CredCard"
        assert decoded == fields
        assert flags == 0

    def test_flags_roundtrip_and_peek(self):
        raw = encode_object("T", {}, flags=FLAG_HAS_TRIGGERS)
        assert peek_flags(raw) == FLAG_HAS_TRIGGERS
        _, _, flags = decode_object(raw)
        assert flags == FLAG_HAS_TRIGGERS

    def test_bad_version_raises(self):
        raw = bytearray(encode_object("T", {}))
        raw[0] = 99
        with pytest.raises(SerializationError):
            decode_object(bytes(raw))

    def test_field_error_names_field(self):
        with pytest.raises(SerializationError, match="bad_field"):
            encode_object("T", {"bad_field": object()})


class TestPointer:
    def test_encode_decode(self):
        ptr = PersistentPtr("mydb", 12345)
        decoded, pos = PersistentPtr.decode_from(ptr.encode(), 0)
        assert decoded == ptr
        assert pos == len(ptr.encode())

    def test_null_detection(self):
        assert NULL_PTR.is_null()
        assert not PersistentPtr("db", 0).is_null()

    def test_ordering_and_hash(self):
        a = PersistentPtr("db", 1)
        b = PersistentPtr("db", 2)
        assert a < b
        assert len({a, b, PersistentPtr("db", 1)}) == 2
