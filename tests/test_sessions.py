"""Concurrent sessions: deterministic scheduling, blocking, deadlock retry.

Tier-1 concurrency runs under the :class:`CooperativeScheduler`, so every
test here asserts on *exact* interleavings — who blocked, who was woken
first, which victim was chosen — rather than racing wall-clock threads
(those live in ``test_threaded_sessions.py`` behind ``-m concurrency``).
"""

import pytest

from repro.errors import DeadlockError, SessionError
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.sessions import CooperativeScheduler
from repro.workloads.locksim import HotObject


class Passbook(Persistent):
    value = field(int, default=0)


def subsequence(log, events):
    """Whether *events* appear in *log* in order (not necessarily adjacent)."""
    it = iter(log)
    return all(event in it for event in events)


class TestSessionBasics:
    def test_default_session_serial_api_unchanged(self, mm_db):
        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook, value=3).ptr
        with db.transaction():
            assert db.deref(ptr).value == 3
        assert db.current_session() is db.default_session()
        assert not db.storage.lock_manager.blocking  # still the serial mode

    def test_second_session_flips_lock_manager_to_blocking(self, mm_db):
        db = mm_db
        extra = db.session("other")
        assert db.storage.lock_manager.blocking
        extra.close()
        # Sticky: handles from the closed session may still be in flight.
        assert db.storage.lock_manager.blocking

    def test_duplicate_live_session_name_rejected(self, mm_db):
        db = mm_db
        db.session("app")
        with pytest.raises(SessionError):
            db.session("app")

    def test_session_close_aborts_open_transaction(self, mm_db):
        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook, value=1).ptr
        sess = db.session("doomed")
        sess.begin()
        handle = sess.deref(ptr)
        handle.value = 99
        sess.close()
        with db.transaction():
            assert db.deref(ptr).value == 1  # the write was rolled back

    def test_handle_bound_to_dereferencing_session(self, mm_db):
        """A handle used from another thread's context still writes into
        the transaction of the session that dereferenced it."""
        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook).ptr
        sess = db.session("owner")
        sess.begin()
        handle = sess.deref(ptr)
        # The calling thread's ambient session is the default one, and the
        # default session has no transaction — yet the write succeeds,
        # because the handle carries its session.
        assert db.default_session().current_txn is None
        handle.value = 7
        assert sess.current_txn is not None
        sess.commit()
        with db.transaction():
            assert db.deref(ptr).value == 7

    def test_sessions_and_events_metrics_mounted(self, mm_db):
        db = mm_db
        db.session("a").close()
        snap = db.metrics.snapshot()
        assert snap["sessions.opened"] == 2  # default + "a"
        assert snap["sessions.closed"] == 1
        assert snap["sessions.peak_concurrent"] == 2
        assert snap["events.assigned"] > 0  # the process-wide eventRep table
        assert snap["events.table_size"] == snap["events.assigned"]


class TestCooperativeScheduling:
    def test_s_x_conflict_blocks_and_commit_wakes_fifo(self, mm_db):
        """A holds X; B and C queue their reads (S) behind it FIFO.

        A's commit grants *both* S requests in one release (shared locks
        are compatible), waking B then C in arrival order.  B's write then
        needs the S→X upgrade, which must wait for reader C's commit — so
        C deterministically observes A's value, and B's write lands last.
        """
        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook, value=0).ptr

        sched = CooperativeScheduler()
        sa, sb, sc = (db.session(n) for n in ("A", "B", "C"))
        seen = {}

        def writer_a():
            with sa.transaction():
                handle = sa.deref(ptr)
                handle.value = 1  # X lock held until commit
                sched.yield_now()  # let B and C arrive and block

        def writer_b():
            with sb.transaction():
                handle = sb.deref(ptr)  # S ... then S→X upgrade below
                handle.value = handle.value + 10

        def reader_c():
            with sc.transaction():
                seen["c"] = sc.deref(ptr).value

        sched.spawn(writer_a, "A", session=sa)
        sched.spawn(writer_b, "B", session=sb)
        sched.spawn(reader_c, "C", session=sc)
        sched.run()

        assert seen["c"] == 1  # C read under its S grant, before B's upgrade
        with db.transaction():
            assert db.deref(ptr).value == 11  # B's write committed last
        assert subsequence(
            sched.log,
            [
                ("block", "B"),  # B's S queues behind A's X
                ("block", "C"),  # C's S queues behind B (arrival order)
                ("done", "A"),
                ("wake", "B"),  # one release grants both S's, FIFO order
                ("wake", "C"),
                ("block", "B"),  # B's S→X upgrade waits for reader C
                ("done", "C"),
                ("wake", "B"),  # C's commit releases the last S
                ("done", "B"),
            ],
        )

    def test_forced_deadlock_victim_aborts_retries_commits(self, mm_db):
        db = mm_db
        with db.transaction():
            p1 = db.pnew(Passbook).ptr
            p2 = db.pnew(Passbook).ptr

        sched = CooperativeScheduler()
        sa = db.session("A")
        sb = db.session("B")
        lock_stats = db.storage.lock_manager.stats

        def program(session, first, second, amount):
            def body(txn):
                h1 = session.deref(first)
                h1.value = h1.value + amount
                sched.yield_now()  # guarantee lock interleaving
                h2 = session.deref(second)
                h2.value = h2.value + amount

            session.run(body)

        sched.spawn(lambda: program(sa, p1, p2, 1), "A", session=sa)
        sched.spawn(lambda: program(sb, p2, p1, 10), "B", session=sb)
        sched.run()

        assert lock_stats.deadlocks == 1
        assert db.session_stats.deadlock_retries == 1
        assert db.session_stats.retry_exhausted == 0
        with db.transaction():
            # Both transactions committed exactly once despite the abort.
            assert db.deref(p1).value == 11
            assert db.deref(p2).value == 11

    def test_deadlock_retry_budget_exhaustion_reraises(self, mm_db):
        """With retries=0 the victim re-raises instead of retrying."""
        db = mm_db
        with db.transaction():
            p1 = db.pnew(Passbook).ptr
            p2 = db.pnew(Passbook).ptr

        sched = CooperativeScheduler()
        sa = db.session("A")
        sb = db.session("B")

        def program(session, first, second):
            def body(txn):
                h1 = session.deref(first)
                h1.value = h1.value + 1
                sched.yield_now()
                h2 = session.deref(second)
                h2.value = h2.value + 1

            session.run(body, retries=0)

        sched.spawn(lambda: program(sa, p1, p2), "A", session=sa)
        sched.spawn(lambda: program(sb, p2, p1), "B", session=sb)
        with pytest.raises(DeadlockError):
            sched.run()
        assert db.session_stats.retry_exhausted == 1

    def test_single_task_degenerate_case(self, mm_db):
        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook).ptr
        sched = CooperativeScheduler()
        sess = db.session("solo")

        def program():
            with sess.transaction():
                handle = sess.deref(ptr)
                handle.value = 5
            return "ok"

        sched.spawn(program, "solo", session=sess)
        assert sched.run() == ["ok"]
        assert ("block", "solo") not in sched.log


class TestSharedCompositeEvent:
    def test_two_sessions_advance_one_composite_event(self, mm_db):
        """Paper §7: a global event spanning applications — one session
        posts Ping, a *different* session posts Pong, and the trigger's
        relative(Ping, Pong) machine (persistent state) fires in the
        second session's transaction."""
        db = mm_db
        with db.transaction():
            handle = db.pnew(HotObject)
            ptr = handle.ptr
            handle.Watch()

        stats = db.trigger_system.stats
        before = stats.snapshot()
        app1 = db.session("app1")
        app2 = db.session("app2")
        with app1.transaction():
            app1.deref(ptr).post_event("Ping")
        mid = stats.diff(before)
        assert mid["firings"] == 0  # armed, not yet fired
        with app2.transaction():
            app2.deref(ptr).post_event("Pong")
        after = stats.diff(before)
        assert after["firings"] == 1  # completed across sessions
        assert after["state_writes"] == 2


class TestSchedulerHangDetection:
    """A task thread that fails to exit at shutdown must surface a typed
    error naming the stuck session and its lock state — not be silently
    abandoned by a bare `join(timeout=...)`."""

    def test_hung_thread_raises_scheduler_hang_error(self):
        import threading

        from repro.errors import SchedulerHangError
        from repro.sessions.scheduler import SchedulerTask

        sched = CooperativeScheduler()
        never = threading.Event()
        task = SchedulerTask(0, "stuck", lambda: None)
        task.state = "done"
        task.thread = threading.Thread(target=never.wait, daemon=True)
        task.thread.start()
        sched._tasks.append(task)
        try:
            with pytest.raises(SchedulerHangError) as excinfo:
                sched._join_tasks(0.05)
            assert "stuck" in str(excinfo.value)
            assert "no session attached" in str(excinfo.value)
        finally:
            never.set()

    def test_hang_report_names_held_locks_and_waits(self, mm_db):
        import threading

        from repro.errors import SchedulerHangError
        from repro.sessions.scheduler import SchedulerTask

        db = mm_db
        with db.transaction():
            ptr = db.pnew(Passbook).ptr
        session = db.session("holder")
        session.begin()
        session.deref(ptr).value = 1  # takes the record's X lock

        sched = CooperativeScheduler()
        never = threading.Event()
        task = SchedulerTask(0, "holder-task", lambda: None)
        task.state = "blocked"
        task.session = session
        task.thread = threading.Thread(target=never.wait, daemon=True)
        task.thread.start()
        sched._tasks.append(task)
        try:
            with pytest.raises(SchedulerHangError) as excinfo:
                sched._join_tasks(0.05)
            message = str(excinfo.value)
            assert "holder-task" in message
            assert "session 'holder'" in message
            assert f"txn {session.current_txn.txid} holds" in message
        finally:
            never.set()
            session.close()

    def test_clean_runs_do_not_raise(self, mm_db):
        db = mm_db
        session = db.session("quick")
        sched = CooperativeScheduler()
        sched.spawn(lambda: session.close() or 7, name="quick", session=session)
        assert sched.run() == [7]  # joins within the timeout, no error
