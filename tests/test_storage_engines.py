"""Storage-engine tests, parametrized over disk (EOS-like) and MM (Dali-like)."""

import pytest

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.disk import DiskStorageManager, pack_rid, unpack_rid
from repro.storage.mainmem import MainMemoryStorageManager


@pytest.fixture(params=["disk", "mm"])
def engine_factory(request, tmp_path):
    """A callable that (re)opens the same storage manager."""
    path = str(tmp_path / "store")
    if request.param == "disk":
        return lambda: DiskStorageManager(path)
    return lambda: MainMemoryStorageManager(path)


@pytest.fixture
def sm(engine_factory):
    manager = engine_factory()
    yield manager
    try:
        manager.close()
    except StorageError:
        pass


class TestBasicOperations:
    def test_insert_read_roundtrip(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"payload")
        assert sm.read(1, rid) == b"payload"
        sm.commit_transaction(1)

    def test_write_replaces(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"v1")
        sm.write(1, rid, b"v2")
        assert sm.read(1, rid) == b"v2"
        sm.commit_transaction(1)

    def test_delete_removes(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"doomed")
        sm.delete(1, rid)
        assert not sm.exists(1, rid)
        with pytest.raises(RecordNotFoundError):
            sm.read(1, rid)
        sm.commit_transaction(1)

    def test_scan_sees_all_records(self, sm):
        sm.begin_transaction(1)
        rids = {sm.insert(1, f"rec{i}".encode()): f"rec{i}".encode() for i in range(20)}
        found = dict(sm.scan(1))
        assert found == rids
        sm.commit_transaction(1)

    def test_read_missing_raises(self, sm):
        sm.begin_transaction(1)
        with pytest.raises(RecordNotFoundError):
            sm.read(1, 1 << 40)
        sm.commit_transaction(1)

    def test_operation_outside_transaction_raises(self, sm):
        with pytest.raises(StorageError):
            sm.insert(99, b"no txn")

    def test_double_begin_raises(self, sm):
        sm.begin_transaction(1)
        with pytest.raises(StorageError):
            sm.begin_transaction(1)
        sm.commit_transaction(1)


class TestAbort:
    def test_abort_undoes_insert(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"temp")
        sm.abort_transaction(1)
        sm.begin_transaction(2)
        assert not sm.exists(2, rid)
        sm.commit_transaction(2)

    def test_abort_undoes_update(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"original")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.write(2, rid, b"changed")
        sm.abort_transaction(2)
        sm.begin_transaction(3)
        assert sm.read(3, rid) == b"original"
        sm.commit_transaction(3)

    def test_abort_undoes_delete(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"survivor")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.delete(2, rid)
        sm.abort_transaction(2)
        sm.begin_transaction(3)
        assert sm.read(3, rid) == b"survivor"
        sm.commit_transaction(3)

    def test_abort_undoes_in_reverse_order(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"a")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.write(2, rid, b"b")
        sm.write(2, rid, b"c")
        sm.delete(2, rid)
        sm.abort_transaction(2)
        sm.begin_transaction(3)
        assert sm.read(3, rid) == b"a"
        sm.commit_transaction(3)

    def test_abort_releases_locks(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"locked")
        sm.abort_transaction(1)
        assert sm.lock_manager.locks_held(1) == frozenset()


class TestRoot:
    def test_root_starts_unset(self, sm):
        assert sm.get_root() == sm.NO_ROOT

    def test_set_root_persists_in_txn(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"catalog")
        sm.set_root(1, rid)
        sm.commit_transaction(1)
        assert sm.get_root() == rid

    def test_abort_rolls_back_root(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"catalog")
        sm.set_root(1, rid)
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        rid2 = sm.insert(2, b"other")
        sm.set_root(2, rid2)
        sm.abort_transaction(2)
        assert sm.get_root() == rid


class TestDurability:
    def test_close_reopen_preserves_committed(self, engine_factory):
        sm = engine_factory()
        sm.begin_transaction(1)
        rid = sm.insert(1, b"durable")
        sm.set_root(1, rid)
        sm.commit_transaction(1)
        sm.close()
        sm2 = engine_factory()
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"durable"
        assert sm2.get_root() == rid
        sm2.commit_transaction(1)
        sm2.close()

    def test_crash_preserves_committed_loses_uncommitted(self, engine_factory):
        sm = engine_factory()
        sm.begin_transaction(1)
        rid = sm.insert(1, b"committed")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.write(2, rid, b"uncommitted")
        uncommitted_rid = sm.insert(2, b"phantom")
        sm.simulate_crash()
        sm2 = engine_factory()
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"committed"
        assert not sm2.exists(1, uncommitted_rid)
        sm2.commit_transaction(1)
        sm2.close()

    def test_crash_after_abort_does_not_resurrect(self, engine_factory):
        """The compensation-logging path: abort, then later commit, then crash."""
        sm = engine_factory()
        sm.begin_transaction(1)
        rid = sm.insert(1, b"v1")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.write(2, rid, b"aborted-value")
        sm.abort_transaction(2)
        sm.begin_transaction(3)
        sm.write(3, rid, b"v2")
        sm.commit_transaction(3)
        sm.simulate_crash()
        sm2 = engine_factory()
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"v2"
        sm2.commit_transaction(1)
        sm2.close()

    def test_checkpoint_truncates_log_keeps_data(self, engine_factory):
        sm = engine_factory()
        sm.begin_transaction(1)
        rid = sm.insert(1, b"data")
        sm.commit_transaction(1)
        sm.checkpoint()
        sm.begin_transaction(2)
        assert sm.read(2, rid) == b"data"
        sm.commit_transaction(2)
        sm.close()
        sm2 = engine_factory()
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"data"
        sm2.commit_transaction(1)
        sm2.close()

    def test_checkpoint_with_active_txn_raises(self, sm):
        sm.begin_transaction(1)
        with pytest.raises(StorageError):
            sm.checkpoint()
        sm.commit_transaction(1)

    def test_close_aborts_open_transactions(self, engine_factory):
        sm = engine_factory()
        sm.begin_transaction(1)
        rid = sm.insert(1, b"committed")
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        sm.write(2, rid, b"in-flight")
        sm.close()
        sm2 = engine_factory()
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"committed"
        sm2.commit_transaction(1)
        sm2.close()


class TestStats:
    def test_counters_track_operations(self, sm):
        sm.begin_transaction(1)
        rid = sm.insert(1, b"x")
        sm.read(1, rid)
        sm.write(1, rid, b"y")
        sm.delete(1, rid)
        sm.commit_transaction(1)
        snapshot = sm.stats.snapshot()
        assert snapshot["inserts"] == 1
        assert snapshot["reads"] == 1
        assert snapshot["writes"] == 1
        assert snapshot["deletes"] == 1
        assert snapshot["commits"] == 1


class TestDiskSpecific:
    def test_rid_packing_roundtrip(self):
        for page_no, slot_no in [(1, 0), (7, 65535), (123456, 42)]:
            assert unpack_rid(pack_rid(page_no, slot_no)) == (page_no, slot_no)

    def test_large_record_forwarding(self, tmp_path):
        sm = DiskStorageManager(str(tmp_path / "fwd"))
        sm.begin_transaction(1)
        rids = [sm.insert(1, bytes([i]) * 60) for i in range(200)]
        big = b"B" * 3900
        sm.write(1, rids[3], big)
        assert sm.read(1, rids[3]) == big
        # Grow the forwarded record again (target relocation).
        bigger = b"C" * 3950
        sm.write(1, rids[3], bigger)
        assert sm.read(1, rids[3]) == bigger
        # Shrink it back (stays behind the forward pointer).
        sm.write(1, rids[3], b"small")
        assert sm.read(1, rids[3]) == b"small"
        sm.commit_transaction(1)
        # Scan must not yield moved bodies as separate records.
        sm.begin_transaction(2)
        found = dict(sm.scan(2))
        assert found[rids[3]] == b"small"
        assert len(found) == 200
        sm.commit_transaction(2)
        sm.close()

    def test_forwarded_record_survives_reopen(self, tmp_path):
        path = str(tmp_path / "fwd2")
        sm = DiskStorageManager(path)
        sm.begin_transaction(1)
        rids = [sm.insert(1, b"x" * 60) for _ in range(100)]
        sm.write(1, rids[0], b"Y" * 3900)
        sm.commit_transaction(1)
        sm.close()
        sm2 = DiskStorageManager(path)
        sm2.begin_transaction(1)
        assert sm2.read(1, rids[0]) == b"Y" * 3900
        sm2.commit_transaction(1)
        sm2.close()

    def test_delete_forwarded_record(self, tmp_path):
        sm = DiskStorageManager(str(tmp_path / "fwd3"))
        sm.begin_transaction(1)
        rids = [sm.insert(1, b"x" * 60) for _ in range(100)]
        sm.write(1, rids[5], b"Z" * 3900)
        sm.delete(1, rids[5])
        assert not sm.exists(1, rids[5])
        sm.commit_transaction(1)
        sm.close()

    def test_small_buffer_pool_still_correct(self, tmp_path):
        sm = DiskStorageManager(str(tmp_path / "small"), buffer_capacity=2)
        sm.begin_transaction(1)
        rids = [sm.insert(1, bytes([i % 250]) * 500) for i in range(64)]
        sm.commit_transaction(1)
        sm.begin_transaction(2)
        for i, rid in enumerate(rids):
            assert sm.read(2, rid) == bytes([i % 250]) * 500
        sm.commit_transaction(2)
        assert sm.stats.page_evictions > 0
        sm.close()


class TestMainMemorySpecific:
    def test_non_durable_touches_no_files(self, tmp_path):
        sm = MainMemoryStorageManager(None, durable=False)
        sm.begin_transaction(1)
        rid = sm.insert(1, b"volatile")
        assert sm.read(1, rid) == b"volatile"
        sm.commit_transaction(1)
        sm.close()
        assert list(tmp_path.iterdir()) == []

    def test_durable_requires_path(self):
        with pytest.raises(StorageError):
            MainMemoryStorageManager(None, durable=True)

    def test_snapshot_plus_oplog_recovery(self, tmp_path):
        path = str(tmp_path / "dali")
        sm = MainMemoryStorageManager(path)
        sm.begin_transaction(1)
        rid = sm.insert(1, b"snapshotted")
        sm.commit_transaction(1)
        sm.checkpoint()  # record goes into the snapshot
        sm.begin_transaction(2)
        rid2 = sm.insert(2, b"logged-after-snapshot")
        sm.commit_transaction(2)
        sm.simulate_crash()  # rid2 only in the op log
        sm2 = MainMemoryStorageManager(path)
        sm2.begin_transaction(1)
        assert sm2.read(1, rid) == b"snapshotted"
        assert sm2.read(1, rid2) == b"logged-after-snapshot"
        sm2.commit_transaction(1)
        sm2.close()
