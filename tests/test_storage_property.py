"""Property-based storage tests: engines behave like a model dict, and
crash recovery preserves exactly the committed prefix."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.disk import DiskStorageManager
from repro.storage.mainmem import MainMemoryStorageManager

# One op = (kind, slot_index, payload).  Slot indexes address the list of
# rids created so far, modulo its length.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "write", "delete", "commit", "abort"]),
        st.integers(0, 30),
        st.binary(min_size=0, max_size=120),
    ),
    max_size=50,
)


def _run_model(sm, ops):
    """Drive *sm* and a model dict; returns (committed state, rids)."""
    committed: dict[int, bytes] = {}
    pending: dict[int, bytes | None] = {}
    rids: list[int] = []
    txid = 1
    sm.begin_transaction(txid)

    def restart(keep: bool):
        nonlocal pending, txid
        if keep:
            for rid, value in pending.items():
                if value is None:
                    committed.pop(rid, None)
                else:
                    committed[rid] = value
        pending = {}
        txid += 1
        sm.begin_transaction(txid)

    for kind, index, payload in ops:
        if kind == "insert":
            rid = sm.insert(txid, payload)
            rids.append(rid)
            pending[rid] = payload
        elif kind == "commit":
            sm.commit_transaction(txid)
            restart(keep=True)
        elif kind == "abort":
            sm.abort_transaction(txid)
            restart(keep=False)
        elif rids:
            rid = rids[index % len(rids)]
            current = pending.get(rid, committed.get(rid))
            if kind == "write" and current is not None:
                sm.write(txid, rid, payload)
                pending[rid] = payload
            elif kind == "delete" and current is not None:
                sm.delete(txid, rid)
                pending[rid] = None
    sm.abort_transaction(txid)  # leave only committed state behind
    return committed


@pytest.mark.parametrize("engine", ["disk", "mm"])
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=_OPS)
def test_engine_matches_model(engine, tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("prop") / "store")
    sm = (
        DiskStorageManager(path)
        if engine == "disk"
        else MainMemoryStorageManager(path)
    )
    try:
        committed = _run_model(sm, ops)
        sm.begin_transaction(10_000)
        assert dict(sm.scan(10_000)) == committed
        sm.commit_transaction(10_000)
    finally:
        sm.close()


@pytest.mark.parametrize("engine", ["disk", "mm"])
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=_OPS)
def test_crash_recovery_preserves_committed_state(engine, tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("crash") / "store")

    def factory():
        return (
            DiskStorageManager(path)
            if engine == "disk"
            else MainMemoryStorageManager(path)
        )

    sm = factory()
    committed = _run_model(sm, ops)
    sm.simulate_crash()
    recovered = factory()
    try:
        recovered.begin_transaction(1)
        assert dict(recovered.scan(1)) == committed
        recovered.commit_transaction(1)
    finally:
        recovered.close()
