"""Threaded multi-session stress (run with ``pytest -m concurrency``).

Real ``threading`` sessions — no cooperative scheduler — so interleavings
are nondeterministic: blocked sessions sleep on the lock manager's
condition variable, deadlock victims back off with randomized sleeps, and
the assertions are invariants (conservation, durability) rather than exact
schedules.  Tier-1 covers the deterministic equivalents in
``test_sessions.py``.
"""

import threading

import pytest

from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field

pytestmark = pytest.mark.concurrency


class Tally(Persistent):
    value = field(int, default=0)


def run_threads(db, n_sessions, txns_each, make_body, retries=100):
    """Drive *n_sessions* threads, each committing *txns_each* retried txns."""
    errors = []

    def worker(index):
        session = db.session(f"worker-{index}")
        try:
            for txn_index in range(txns_each):
                session.run(make_body(session, index, txn_index), retries=retries)
        except Exception as exc:  # pragma: no cover - surfaced by assert
            errors.append(exc)
        finally:
            session.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"worker-{i}")
        for i in range(n_sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors


class TestThreadedMM:
    def test_increments_conserved_under_contention(self, mm_db):
        db = mm_db
        sessions, txns = 4, 50
        with db.transaction():
            ptrs = [db.pnew(Tally).ptr for _ in range(3)]

        def make_body(session, index, txn_index):
            def body(txn):
                ptr = ptrs[(index + txn_index) % len(ptrs)]
                handle = session.deref(ptr)
                handle.value = handle.value + 1

            return body

        run_threads(db, sessions, txns, make_body)
        with db.transaction():
            total = sum(db.deref(p).value for p in ptrs)
        # Strict 2PL + retry: every increment committed exactly once.
        assert total == sessions * txns
        assert db.session_stats.retry_exhausted == 0

    def test_conflicting_hot_record(self, mm_db):
        """Every transaction hammers one record: max contention, max
        upgrade deadlocks — the total must still be conserved."""
        db = mm_db
        sessions, txns = 6, 25
        with db.transaction():
            ptr = db.pnew(Tally).ptr

        def make_body(session, index, txn_index):
            def body(txn):
                handle = session.deref(ptr)
                handle.value = handle.value + 1

            return body

        run_threads(db, sessions, txns, make_body, retries=500)
        with db.transaction():
            assert db.deref(ptr).value == sessions * txns
        assert db.session_stats.retry_exhausted == 0


class TestThreadedMvcc:
    """Real threads with ``trigger_cc="mvcc"``: trigger posting takes no
    state X locks, so there are no lock-manager deadlocks to retry — the
    commit-time merge (replay policy) must still converge to the same
    committed FSM state as a serial run of the same transactions."""

    @pytest.mark.parametrize("engine", ["mm", "disk"])
    def test_posting_storm_converges(self, db_path, engine):
        from repro.workloads.locksim import HotObject

        db = Database.open(
            db_path, engine=engine, name=f"th-mvcc-{engine}", trigger_cc="mvcc"
        )
        try:
            sessions, txns = 6, 25
            with db.transaction():
                handle = db.pnew(HotObject)
                handle.Watch()
                ptr = handle.ptr

            def make_body(session, index, txn_index):
                def body(txn):
                    h = session.deref(ptr)
                    h.post_event("Ping")
                    h.post_event("Pong")

                return body

            lock_before = db.storage.lock_manager.stats.snapshot()
            run_threads(db, sessions, txns, make_body)
            lock_after = db.storage.lock_manager.stats.snapshot()

            assert lock_after["x_acquired"] == lock_before["x_acquired"]
            assert lock_after["deadlocks"] == lock_before["deadlocks"]
            mvcc = db.trigger_system.versions.stats
            # Every posted event was buffered; replay preserves them all.
            assert mvcc.buffered_advances == sessions * txns * 2
            assert mvcc.replays == mvcc.conflicts
            assert mvcc.conflict_aborts == 0

            # Transactions are atomic Ping,Pong pairs in *some* order, so
            # the serial equivalent is one such pair repeated — the final
            # state must match a single pair on a fresh database.
            with db.transaction():
                (final,) = [
                    s.statenum
                    for _, s, _ in db.trigger_system.active_triggers(ptr)
                ]
            oracle = Database.open(
                None, engine="mm", name=f"th-oracle-{engine}"
            )
            try:
                with oracle.transaction():
                    h = oracle.pnew(HotObject)
                    h.Watch()
                    optr = h.ptr
                with oracle.transaction():
                    h = oracle.deref(optr)
                    h.post_event("Ping")
                    h.post_event("Pong")
                with oracle.transaction():
                    (expected,) = [
                        s.statenum
                        for _, s, _ in oracle.trigger_system.active_triggers(
                            optr
                        )
                    ]
            finally:
                oracle.close()
            assert final == expected
        finally:
            if not db.closed:
                db.close()


class TestThreadedDisk:
    def test_disk_increments_durable_across_reopen(self, db_path):
        db = Database.open(db_path, engine="disk")
        sessions, txns = 3, 20
        with db.transaction():
            ptrs = [db.pnew(Tally).ptr for _ in range(2)]

        def make_body(session, index, txn_index):
            def body(txn):
                ptr = ptrs[txn_index % len(ptrs)]
                handle = session.deref(ptr)
                handle.value = handle.value + 1

            return body

        run_threads(db, sessions, txns, make_body)
        db.close()

        reopened = Database.open(db_path, engine="disk")
        try:
            with reopened.transaction():
                total = sum(reopened.deref(p).value for p in ptrs)
            assert total == sessions * txns
        finally:
            reopened.close()
