"""Timed-trigger tests (Section 8 extension)."""

import pytest

from repro.core.declarations import trigger
from repro.core.timers import TimerService, VirtualClock
from repro.errors import TriggerError
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Reminder(Persistent):
    fired = field(int, default=0)
    escalated = field(int, default=0)
    paid = field(bool, default=False)

    __events__ = ["Tick", "Timeout", "after place", "after pay"]
    __masks__ = {"unpaid": lambda self: not self.paid}
    __triggers__ = [
        trigger("OnTick", "Tick", action=lambda s, c: s.bump(), perpetual=True),
        trigger(
            "EscalateUnpaid",
            "(after place, Timeout) & unpaid",
            action=lambda s, c: s.escalate(),
        ),
    ]

    def place(self):
        pass

    def pay(self):
        self.paid = True

    def bump(self):
        self.fired += 1

    def escalate(self):
        self.escalated += 1


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_no_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(TriggerError):
            clock.advance(-1.0)
        with pytest.raises(TriggerError):
            clock.set(5.0)


class TestTimerService:
    @pytest.fixture
    def target(self, mm_db):
        with mm_db.transaction():
            handle = mm_db.pnew(Reminder)
            handle.OnTick()
            return handle.ptr

    def test_one_shot_timer_fires_once(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=10.0)
        assert service.advance_to(5.0) == 0
        assert service.advance_to(10.0) == 1
        assert service.advance_to(100.0) == 0
        with mm_db.transaction():
            assert mm_db.deref(target).fired == 1

    def test_periodic_timer_repeats(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=10.0, period=10.0)
        assert service.advance_to(35.0) == 3  # at 10, 20, 30
        with mm_db.transaction():
            assert mm_db.deref(target).fired == 3

    def test_cancel(self, mm_db, target):
        service = TimerService(mm_db)
        timer_id = service.schedule(target, "Tick", delay=10.0)
        assert service.cancel(timer_id)
        assert not service.cancel(timer_id)
        assert service.advance_to(20.0) == 0

    def test_absolute_schedule(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", at=42.0)
        service.advance_to(41.9)
        assert service.fired == 0
        service.advance_to(42.0)
        assert service.fired == 1

    def test_bad_schedules_rejected(self, mm_db, target):
        service = TimerService(mm_db, clock=VirtualClock(100.0))
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick")  # neither delay nor at
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", delay=1.0, at=2.0)
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", at=50.0)  # in the past
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", delay=1.0, period=0.0)

    def test_timers_fire_in_due_order(self, mm_db):
        order = []

        class Probe(Persistent):
            __events__ = ["E1", "E2"]
            __triggers__ = [
                trigger("On1", "E1", action=lambda s, c: order.append(1), perpetual=True),
                trigger("On2", "E2", action=lambda s, c: order.append(2), perpetual=True),
            ]

        with mm_db.transaction():
            probe = mm_db.pnew(Probe)
            probe.On1()
            probe.On2()
            ptr = probe.ptr
        service = TimerService(mm_db)
        service.schedule(ptr, "E2", delay=20.0)
        service.schedule(ptr, "E1", delay=10.0)
        service.advance_to(30.0)
        assert order == [1, 2]

    def test_timeout_composite_pattern(self, mm_db):
        """The motivating use: escalate an order not paid before a timeout."""
        with mm_db.transaction():
            order = mm_db.pnew(Reminder)
            ptr = order.ptr
            order.EscalateUnpaid()
            order.place()
        service = TimerService(mm_db)
        service.schedule(ptr, "Timeout", delay=30.0)
        service.advance_to(31.0)
        with mm_db.transaction():
            assert mm_db.deref(ptr).escalated == 1

    def test_timeout_suppressed_when_paid(self, mm_db):
        with mm_db.transaction():
            order = mm_db.pnew(Reminder)
            ptr = order.ptr
            order.EscalateUnpaid()
            order.place()
        service = TimerService(mm_db)
        service.schedule(ptr, "Timeout", delay=30.0)
        with mm_db.transaction():
            mm_db.deref(ptr).pay()
        service.advance_to(31.0)
        with mm_db.transaction():
            assert mm_db.deref(ptr).escalated == 0

    def test_fires_within_callers_transaction_if_open(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=1.0)
        with mm_db.transaction():
            service.advance_to(2.0)
            # The firing happened inside this still-open transaction.
            assert mm_db.deref(target).fired == 1

    def test_pending_count(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=1.0)
        service.schedule(target, "Tick", delay=2.0)
        assert service.pending() == 2
        service.advance_to(1.5)
        assert service.pending() == 1

    def test_periodic_timer_does_not_drift(self, mm_db, target):
        """Reschedule anchors to ``due + period``, never ``now + period``.

        Processing the tick at t=10 while the clock already reads 10.5
        must leave the next firing at exactly 20.0 — drift-anchoring to
        the processing time would push it to 20.5, then 31.0, ...
        """
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=10.0, period=10.0)
        assert service.advance_to(10.5) == 1
        assert service.advance_to(19.9) == 0  # 20.4 would be due if drifted
        assert service.advance_to(20.0) == 1
        # Late by nearly a full period: both the t=30 and t=40 firings land.
        assert service.advance_to(49.9) == 2
        assert service.advance_to(50.0) == 1

    def test_dangling_target_cancels_timer(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=5.0, period=5.0)
        with mm_db.transaction():
            mm_db.pdelete(target)
        # No DanglingPointerError escapes; the timer is gone for good.
        assert service.advance_to(20.0) == 0
        assert service.pending() == 0
        assert service.stats.dangling_cancelled == 1
        assert service.fired == 0

    def test_deactivated_target_posts_harmlessly(self, mm_db, target):
        with mm_db.transaction():
            [(trigger_id, _, _)] = mm_db.trigger_system.active_triggers(target)
            mm_db.trigger_system.deactivate(trigger_id)
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=1.0)
        assert service.advance_to(2.0) == 1  # posted, short-circuited
        with mm_db.transaction():
            assert mm_db.deref(target).fired == 0

    def test_action_cancelling_own_periodic_timer_wins(self, mm_db):
        service_box = []
        timer_box = []

        class SelfStopping(Persistent):
            ticks = field(int, default=0)

            __events__ = ["Tick"]
            __triggers__ = [
                trigger("Stop", "Tick", action=lambda s, c: s.stop(), perpetual=True)
            ]

            def stop(self):
                self.ticks += 1
                service_box[0].cancel(timer_box[0])

        with mm_db.transaction():
            handle = mm_db.pnew(SelfStopping)
            handle.Stop()
            ptr = handle.ptr
        service = TimerService(mm_db)
        service_box.append(service)
        timer_box.append(service.schedule(ptr, "Tick", delay=1.0, period=1.0))
        # The action cancels the timer while it fires: the pending
        # reschedule must not resurrect it.
        assert service.advance_to(10.0) == 1
        assert service.pending() == 0
        with mm_db.transaction():
            assert mm_db.deref(ptr).ticks == 1

    def test_timer_stats_counters(self, mm_db, target):
        service = TimerService(mm_db)
        timer_id = service.schedule(target, "Tick", delay=1.0)
        service.schedule(target, "Tick", delay=2.0, period=2.0)
        service.cancel(timer_id)
        service.advance_to(6.0)  # periodic fires at 2, 4, 6
        assert service.stats.scheduled == 2
        assert service.stats.cancelled == 1
        assert service.stats.fired == 3
        assert service.stats.rescheduled == 3
        # The service mounted itself on the database's registry.
        assert mm_db.metrics.snapshot()["timers.fired"] == 3
