"""Timed-trigger tests (Section 8 extension)."""

import pytest

from repro.core.declarations import trigger
from repro.core.timers import TimerService, VirtualClock
from repro.errors import TriggerError
from repro.objects.persistent import Persistent
from repro.objects.schema import field


class Reminder(Persistent):
    fired = field(int, default=0)
    escalated = field(int, default=0)
    paid = field(bool, default=False)

    __events__ = ["Tick", "Timeout", "after place", "after pay"]
    __masks__ = {"unpaid": lambda self: not self.paid}
    __triggers__ = [
        trigger("OnTick", "Tick", action=lambda s, c: s.bump(), perpetual=True),
        trigger(
            "EscalateUnpaid",
            "(after place, Timeout) & unpaid",
            action=lambda s, c: s.escalate(),
        ),
    ]

    def place(self):
        pass

    def pay(self):
        self.paid = True

    def bump(self):
        self.fired += 1

    def escalate(self):
        self.escalated += 1


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_no_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(TriggerError):
            clock.advance(-1.0)
        with pytest.raises(TriggerError):
            clock.set(5.0)


class TestTimerService:
    @pytest.fixture
    def target(self, mm_db):
        with mm_db.transaction():
            handle = mm_db.pnew(Reminder)
            handle.OnTick()
            return handle.ptr

    def test_one_shot_timer_fires_once(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=10.0)
        assert service.advance_to(5.0) == 0
        assert service.advance_to(10.0) == 1
        assert service.advance_to(100.0) == 0
        with mm_db.transaction():
            assert mm_db.deref(target).fired == 1

    def test_periodic_timer_repeats(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=10.0, period=10.0)
        assert service.advance_to(35.0) == 3  # at 10, 20, 30
        with mm_db.transaction():
            assert mm_db.deref(target).fired == 3

    def test_cancel(self, mm_db, target):
        service = TimerService(mm_db)
        timer_id = service.schedule(target, "Tick", delay=10.0)
        assert service.cancel(timer_id)
        assert not service.cancel(timer_id)
        assert service.advance_to(20.0) == 0

    def test_absolute_schedule(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", at=42.0)
        service.advance_to(41.9)
        assert service.fired == 0
        service.advance_to(42.0)
        assert service.fired == 1

    def test_bad_schedules_rejected(self, mm_db, target):
        service = TimerService(mm_db, clock=VirtualClock(100.0))
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick")  # neither delay nor at
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", delay=1.0, at=2.0)
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", at=50.0)  # in the past
        with pytest.raises(TriggerError):
            service.schedule(target, "Tick", delay=1.0, period=0.0)

    def test_timers_fire_in_due_order(self, mm_db):
        order = []

        class Probe(Persistent):
            __events__ = ["E1", "E2"]
            __triggers__ = [
                trigger("On1", "E1", action=lambda s, c: order.append(1), perpetual=True),
                trigger("On2", "E2", action=lambda s, c: order.append(2), perpetual=True),
            ]

        with mm_db.transaction():
            probe = mm_db.pnew(Probe)
            probe.On1()
            probe.On2()
            ptr = probe.ptr
        service = TimerService(mm_db)
        service.schedule(ptr, "E2", delay=20.0)
        service.schedule(ptr, "E1", delay=10.0)
        service.advance_to(30.0)
        assert order == [1, 2]

    def test_timeout_composite_pattern(self, mm_db):
        """The motivating use: escalate an order not paid before a timeout."""
        with mm_db.transaction():
            order = mm_db.pnew(Reminder)
            ptr = order.ptr
            order.EscalateUnpaid()
            order.place()
        service = TimerService(mm_db)
        service.schedule(ptr, "Timeout", delay=30.0)
        service.advance_to(31.0)
        with mm_db.transaction():
            assert mm_db.deref(ptr).escalated == 1

    def test_timeout_suppressed_when_paid(self, mm_db):
        with mm_db.transaction():
            order = mm_db.pnew(Reminder)
            ptr = order.ptr
            order.EscalateUnpaid()
            order.place()
        service = TimerService(mm_db)
        service.schedule(ptr, "Timeout", delay=30.0)
        with mm_db.transaction():
            mm_db.deref(ptr).pay()
        service.advance_to(31.0)
        with mm_db.transaction():
            assert mm_db.deref(ptr).escalated == 0

    def test_fires_within_callers_transaction_if_open(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=1.0)
        with mm_db.transaction():
            service.advance_to(2.0)
            # The firing happened inside this still-open transaction.
            assert mm_db.deref(target).fired == 1

    def test_pending_count(self, mm_db, target):
        service = TimerService(mm_db)
        service.schedule(target, "Tick", delay=1.0)
        service.schedule(target, "Tick", delay=2.0)
        assert service.pending() == 2
        service.advance_to(1.5)
        assert service.pending() == 1
