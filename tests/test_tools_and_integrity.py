"""Tests for the inspection tool, integrity verifier, and global deactivate."""

import pytest

import repro
from repro.core.declarations import trigger
from repro.objects.database import Database
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.tools import describe_catalog, describe_objects, describe_triggers, dump_database


class Widget(Persistent):
    size = field(int, default=1)

    __events__ = ["Poke"]
    __triggers__ = [
        trigger("OnPoke", "Poke", action=lambda s, c: None, perpetual=True)
    ]


class TestGlobalDeactivate:
    def test_deactivate_resolves_database_from_pointer(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            widget = db.pnew(Widget)
            trigger_id = widget.OnPoke()
            repro.deactivate(trigger_id)  # the paper's free function
            assert db.trigger_system.active_triggers(widget.ptr) == []


class TestVerifyIntegrity:
    def test_clean_database_is_consistent(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            widget = db.pnew(Widget)
            widget.OnPoke()
            assert db.trigger_system.verify_integrity() == []

    def test_detects_dangling_index_entry(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            widget = db.pnew(Widget)
            trigger_id = widget.OnPoke()
            # Corrupt on purpose: delete the state record but leave the
            # index entry behind.
            db.storage.delete(db.txn_manager.current().txid, trigger_id.rid)
            problems = db.trigger_system.verify_integrity()
            assert any("missing" in p for p in problems)

    def test_detects_deleted_anchor(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        widget = db.pnew(Widget)
        ptr = widget.ptr
        widget.OnPoke()
        # Bypass pdelete (which would clean up) to simulate damage.
        db.storage.delete(txn.txid, ptr.rid)
        problems = db.trigger_system.verify_integrity()
        assert any("anchor object" in p for p in problems)
        db.txn_manager.abort(txn)  # the damage was deliberate: discard it

    def test_detects_unresolvable_type(self, any_engine_db):
        db = any_engine_db
        from repro.core.trigger_state import TriggerState
        from repro.objects.oid import PersistentPtr

        with db.transaction():
            widget = db.pnew(Widget)
            txid = db.txn_manager.current().txid
            ghost = TriggerState(0, widget.ptr, 0, "VanishedClass", {})
            rid = db.storage.insert(txid, ghost.encode())
            db.trigger_system.index.add(db.txn_manager.current(), widget.ptr.rid, rid)
            problems = db.trigger_system.verify_integrity()
            assert any("VanishedClass" in p for p in problems)


class TestDumpTool:
    @pytest.fixture
    def populated(self, db_path):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            widget = db.pnew(Widget, size=7)
            widget.OnPoke()
        yield db
        if not db.closed:
            db.close()

    def test_describe_objects_lists_fields_and_flag(self, populated):
        with populated.transaction():
            lines = describe_objects(populated)
        assert any("Widget" in line and "size=7" in line for line in lines)
        assert any("[triggers]" in line for line in lines)

    def test_describe_triggers_shows_state_and_mode(self, populated):
        with populated.transaction():
            lines = describe_triggers(populated)
        assert len(lines) == 1
        assert "OnPoke" in lines[0]
        assert "immediate" in lines[0]
        assert "perpetual" in lines[0]

    def test_describe_catalog_shows_internal_maps(self, populated):
        with populated.transaction():
            lines = describe_catalog(populated)
        assert any("trigger_index" in line for line in lines)
        assert any("cluster:Widget" in line for line in lines)

    def test_dump_database_opens_own_transaction(self, populated):
        text = dump_database(populated)
        assert "--- objects ---" in text
        assert "--- active triggers ---" in text
        assert "ok" in text  # integrity section

    def test_cli_main(self, db_path, capsys):
        db = Database.open(db_path, engine="disk")
        with db.transaction():
            db.pnew(Widget, size=3)
        db.close()
        from repro.tools import main

        assert main([db_path, "--engine", "disk"]) == 0
        out = capsys.readouterr().out
        assert "Widget" in out
