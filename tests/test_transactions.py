"""Transaction-manager tests: lifecycle, tabort, hooks, dependencies, system txns."""

import pytest

from repro.errors import (
    CommitDependencyError,
    NestedTransactionError,
    NoActiveTransactionError,
    TransactionAbort,
    TransactionError,
)
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.transactions.dependencies import CommitDependencyGraph
from repro.transactions.txn import TxnState


class Note(Persistent):
    text = field(str, default="")


class TestLifecycle:
    def test_commit_makes_state_committed(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        assert txn.is_active
        db.txn_manager.commit(txn)
        assert txn.committed
        assert db.txn_manager.outcomes[txn.txid] is TxnState.COMMITTED

    def test_abort_makes_state_aborted(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        db.txn_manager.abort(txn)
        assert txn.aborted

    def test_nested_begin_raises(self, any_engine_db):
        db = any_engine_db
        db.txn_manager.begin()
        with pytest.raises(NestedTransactionError):
            db.txn_manager.begin()

    def test_current_outside_raises(self, any_engine_db):
        with pytest.raises(NoActiveTransactionError):
            any_engine_db.txn_manager.current()

    def test_commit_foreign_txn_raises(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        db.txn_manager.commit(txn)
        with pytest.raises(TransactionError):
            db.txn_manager.commit(txn)

    def test_txids_increase(self, any_engine_db):
        db = any_engine_db
        t1 = db.txn_manager.begin()
        db.txn_manager.commit(t1)
        t2 = db.txn_manager.begin()
        db.txn_manager.commit(t2)
        assert t2.txid > t1.txid


class TestContextManager:
    def test_commit_on_clean_exit(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Note, text="kept").ptr
        with db.transaction():
            assert db.deref(ptr).text == "kept"

    def test_tabort_swallowed_and_aborts(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Note, text="orig").ptr
        with db.transaction():
            db.deref(ptr).text = "changed"
            raise TransactionAbort("user tabort")
        # Execution continues after the block, as in O++.
        with db.transaction():
            assert db.deref(ptr).text == "orig"

    def test_other_exceptions_abort_and_propagate(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Note, text="orig").ptr
        with pytest.raises(ValueError):
            with db.transaction():
                db.deref(ptr).text = "changed"
                raise ValueError("boom")
        with db.transaction():
            assert db.deref(ptr).text == "orig"


class TestHooks:
    def test_hook_order_on_commit(self, any_engine_db):
        db = any_engine_db
        order = []
        txn = db.txn_manager.begin()
        txn.before_commit.append(lambda t: order.append("before"))
        txn.after_commit.append(lambda t: order.append("after"))
        db.txn_manager.commit(txn)
        assert order == ["before", "after"]

    def test_tabort_in_before_commit_turns_into_abort(self, any_engine_db):
        db = any_engine_db
        txn = db.txn_manager.begin()
        ptr = db.pnew(Note, text="doomed").ptr

        def veto(t):
            raise TransactionAbort("deferred veto")

        txn.before_commit.append(veto)
        state = db.txn_manager.commit(txn)
        assert state is TxnState.ABORTED
        with db.transaction():
            from repro.errors import DanglingPointerError

            with pytest.raises(DanglingPointerError):
                db.deref(ptr)

    def test_abort_hooks_fire(self, any_engine_db):
        db = any_engine_db
        order = []
        txn = db.txn_manager.begin()
        txn.before_abort.append(lambda t: order.append("before"))
        txn.after_abort.append(lambda t: order.append("after"))
        db.txn_manager.abort(txn)
        assert order == ["before", "after"]

    def test_implicit_abort_skips_before_abort(self, any_engine_db):
        db = any_engine_db
        order = []
        txn = db.txn_manager.begin()
        txn.before_abort.append(lambda t: order.append("before"))
        db.txn_manager.abort(txn, explicit=False)
        assert order == []

    def test_on_begin_listener_runs_per_txn(self, any_engine_db):
        db = any_engine_db
        seen = []
        db.txn_manager.on_begin(lambda t: seen.append(t.txid))
        with db.transaction():
            pass
        with db.transaction():
            pass
        assert len(seen) == 2


class TestSystemTransactions:
    def test_run_system_transaction_commits(self, any_engine_db):
        db = any_engine_db
        holder = {}

        def body(txn):
            holder["ptr"] = db.pnew(Note, text="system").ptr
            assert txn.system

        db.txn_manager.run_system_transaction(body)
        with db.transaction():
            assert db.deref(holder["ptr"]).text == "system"

    def test_system_txn_tabort_rolls_back(self, any_engine_db):
        db = any_engine_db
        holder = {}

        def body(txn):
            holder["ptr"] = db.pnew(Note).ptr
            raise TransactionAbort()

        txn = db.txn_manager.run_system_transaction(body)
        assert txn.aborted
        with db.transaction():
            from repro.errors import DanglingPointerError

            with pytest.raises(DanglingPointerError):
                db.deref(holder["ptr"])

    def test_dependency_on_committed_parent_ok(self, any_engine_db):
        db = any_engine_db
        parent = db.txn_manager.begin()
        db.txn_manager.commit(parent)
        txn = db.txn_manager.run_system_transaction(
            lambda t: None, depends_on=parent.txid
        )
        assert txn.committed

    def test_dependency_on_aborted_parent_blocks_commit(self, any_engine_db):
        db = any_engine_db
        parent = db.txn_manager.begin()
        db.txn_manager.abort(parent)
        with pytest.raises(CommitDependencyError):
            db.txn_manager.run_system_transaction(
                lambda t: None, depends_on=parent.txid
            )
        # The dependent work was rolled back and the manager is usable.
        with db.transaction():
            pass

    def test_dependent_work_rolled_back_on_dependency_failure(self, any_engine_db):
        db = any_engine_db
        parent = db.txn_manager.begin()
        db.txn_manager.abort(parent)
        holder = {}

        def body(txn):
            holder["ptr"] = db.pnew(Note, text="should-vanish").ptr

        with pytest.raises(CommitDependencyError):
            db.txn_manager.run_system_transaction(body, depends_on=parent.txid)
        with db.transaction():
            from repro.errors import DanglingPointerError

            with pytest.raises(DanglingPointerError):
                db.deref(holder["ptr"])


class TestDependencyGraph:
    def test_self_dependency_raises(self):
        graph = CommitDependencyGraph()
        with pytest.raises(CommitDependencyError):
            graph.add(1, 1)

    def test_unknown_parent_blocks(self):
        graph = CommitDependencyGraph()
        graph.add(2, 1)
        with pytest.raises(CommitDependencyError):
            graph.check_commit_allowed(2, {})

    def test_committed_parent_allows(self):
        graph = CommitDependencyGraph()
        graph.add(2, 1)
        graph.check_commit_allowed(2, {1: TxnState.COMMITTED})

    def test_forget_clears_edges(self):
        graph = CommitDependencyGraph()
        graph.add(2, 1)
        graph.forget(2)
        assert graph.parents_of(2) == frozenset()
