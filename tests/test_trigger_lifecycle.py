"""Trigger activation/deactivation, index, flags, and TriggerState tests."""

import pytest

from repro.core.declarations import trigger
from repro.core.trigger_state import TriggerState
from repro.errors import (
    TriggerArgumentError,
    TriggerError,
    TriggerNotActiveError,
)
from repro.objects.oid import PersistentPtr
from repro.objects.persistent import Persistent
from repro.objects.schema import field
from repro.objects.serialize import FLAG_HAS_TRIGGERS


class Gadget(Persistent):
    clicks = field(int, default=0)
    log = field(list, default=[])

    __events__ = ["after click", "Ping"]
    __triggers__ = [
        trigger(
            "OnClick",
            "after click",
            action=lambda self, ctx: self.log_append("clicked"),
            perpetual=True,
        ),
        trigger(
            "OnPing",
            "Ping",
            action=lambda self, ctx: self.log_append(f"ping:{ctx.params['tag']}"),
            params=("tag",),
        ),
    ]

    def click(self):
        self.clicks += 1

    def log_append(self, entry):
        self.log = self.log + [entry]


class TestActivation:
    def test_activation_returns_trigger_id(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            trigger_id = gadget.OnClick()
            assert isinstance(trigger_id, PersistentPtr)

    def test_unactivated_trigger_never_fires(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            gadget.click()
        with db.transaction():
            assert db.deref(ptr).log == []

    def test_activated_trigger_fires(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            gadget.OnClick()
            gadget.click()
        with db.transaction():
            assert db.deref(ptr).log == ["clicked"]

    def test_activation_args_stored_and_passed(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            gadget.OnPing("alpha")
            gadget.post_event("Ping")
        with db.transaction():
            assert db.deref(ptr).log == ["ping:alpha"]

    def test_wrong_arg_count_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            with pytest.raises(TriggerArgumentError):
                gadget.OnPing()
            with pytest.raises(TriggerArgumentError):
                gadget.OnPing("a", "b")

    def test_activation_on_wrong_class_raises(self, any_engine_db):
        db = any_engine_db

        class Unrelated(Persistent):
            v = field(int, default=0)

        with db.transaction():
            other = db.pnew(Unrelated)
            info = Gadget.__metatype__.trigger_by_name("OnClick")
            with pytest.raises(TriggerError):
                db.trigger_system.activate(db, other.ptr, info)

    def test_activation_sets_has_triggers_flag(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            assert not gadget.obj.__dict__["_p_flags"] & FLAG_HAS_TRIGGERS
            gadget.OnClick()
            assert gadget.obj.__dict__["_p_flags"] & FLAG_HAS_TRIGGERS

    def test_multiple_activations_of_same_trigger(self, any_engine_db):
        """The same trigger can be activated twice with different args."""
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            gadget.OnPing("one")
            gadget.OnPing("two")
            gadget.post_event("Ping")
        with db.transaction():
            assert sorted(db.deref(ptr).log) == ["ping:one", "ping:two"]


class TestDeactivation:
    def test_deactivate_stops_firing(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            trigger_id = gadget.OnClick()
            gadget.click()
            db.trigger_system.deactivate(trigger_id)
            gadget.click()
        with db.transaction():
            assert db.deref(ptr).log == ["clicked"]

    def test_deactivate_unknown_raises(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            with pytest.raises(TriggerNotActiveError):
                db.trigger_system.deactivate(PersistentPtr(db.name, 999_999))

    def test_deactivate_clears_flag_when_last(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            trigger_id = gadget.OnClick()
            db.trigger_system.deactivate(trigger_id)
            assert not gadget.obj.__dict__["_p_flags"] & FLAG_HAS_TRIGGERS

    def test_flag_kept_while_other_triggers_remain(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            keep = gadget.OnClick()
            drop = gadget.OnPing("x")
            db.trigger_system.deactivate(drop)
            assert gadget.obj.__dict__["_p_flags"] & FLAG_HAS_TRIGGERS

    def test_pdelete_deactivates_everything(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            ptr = gadget.ptr
            gadget.OnClick()
            gadget.OnPing("x")
        with db.transaction():
            db.pdelete(ptr)
            assert db.trigger_system.active_triggers(ptr) == []


class TestActiveTriggers:
    def test_listing(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            gadget = db.pnew(Gadget)
            gadget.OnClick()
            gadget.OnPing("tag1")
            triggers = db.trigger_system.active_triggers(gadget.ptr)
            names = sorted(info.name for _, _, info in triggers)
            assert names == ["OnClick", "OnPing"]
            ping_state = next(
                tstate for _, tstate, info in triggers if info.name == "OnPing"
            )
            assert ping_state.params == {"tag": "tag1"}

    def test_activation_rolls_back_with_transaction(self, any_engine_db):
        db = any_engine_db
        with db.transaction():
            ptr = db.pnew(Gadget).ptr
        txn = db.txn_manager.begin()
        db.deref(ptr).OnClick()
        db.txn_manager.abort(txn)
        with db.transaction():
            assert db.trigger_system.active_triggers(ptr) == []
            # flag also rolled back
            assert not db.deref(ptr).obj.__dict__["_p_flags"] & FLAG_HAS_TRIGGERS


class TestTriggerStateRecord:
    def test_encode_decode_roundtrip(self):
        state = TriggerState(
            triggernum=1,
            trigobj=PersistentPtr("db", 7),
            statenum=3,
            trigobjtype="CredCard",
            params={"amount": 500.0},
        )
        decoded = TriggerState.decode(state.encode())
        assert decoded == state

    def test_arg_tuple_orders_by_declaration(self):
        state = TriggerState(0, PersistentPtr("d", 1), 0, "T", {"b": 2, "a": 1})
        assert state.arg_tuple(("a", "b")) == (1, 2)

    def test_corrupt_record_raises(self):
        from repro.errors import TriggerError
        from repro.objects.serialize import encode_value

        out = bytearray()
        encode_value({"not": "a trigger state"}, out)
        with pytest.raises(TriggerError):
            TriggerState.decode(bytes(out))
