"""Transaction-event tests: before tcomplete / before tabort (Section 5.5)."""

import pytest

from repro.core.declarations import trigger
from repro.errors import TransactionAbort
from repro.objects.persistent import Persistent
from repro.objects.schema import field

SEEN: list[str] = []


class Watched(Persistent):
    v = field(int, default=0)
    commits_seen = field(int, default=0)

    __events__ = ["after poke", "before tcomplete", "before tabort"]
    __triggers__ = [
        trigger(
            "AtCommit",
            "before tcomplete",
            action=lambda self, ctx: SEEN.append("tcomplete"),
            perpetual=True,
        ),
        trigger(
            "AtAbort",
            "before tabort",
            action=lambda self, ctx: SEEN.append("tabort"),
            perpetual=True,
        ),
        trigger(
            "PokeThenCommit",
            "after poke, before tcomplete",
            action=lambda self, ctx: SEEN.append("poke-then-commit"),
            perpetual=True,
        ),
    ]

    def poke(self):
        self.v += 1


@pytest.fixture(autouse=True)
def _clear():
    SEEN.clear()
    yield
    SEEN.clear()


def test_tcomplete_posted_on_commit_when_accessed(any_engine_db):
    db = any_engine_db
    with db.transaction():
        obj = db.pnew(Watched)
        ptr = obj.ptr
        obj.AtCommit()
    SEEN.clear()
    with db.transaction():
        db.deref(ptr)  # merely accessing registers interest
    assert SEEN == ["tcomplete"]


def test_tcomplete_not_posted_when_object_untouched(any_engine_db):
    db = any_engine_db
    with db.transaction():
        obj = db.pnew(Watched)
        obj.AtCommit()
    SEEN.clear()
    with db.transaction():
        pass  # object never accessed in this transaction
    assert SEEN == []


def test_tabort_posted_on_explicit_abort(any_engine_db):
    db = any_engine_db
    with db.transaction():
        obj = db.pnew(Watched)
        ptr = obj.ptr
        obj.AtAbort()
    SEEN.clear()
    with db.transaction():
        db.deref(ptr)
        raise TransactionAbort()
    assert SEEN == ["tabort"]


def test_tabort_not_posted_on_implicit_abort(any_engine_db):
    """Crash-style aborts cannot post events (paper Section 6)."""
    db = any_engine_db
    with db.transaction():
        obj = db.pnew(Watched)
        ptr = obj.ptr
        obj.AtAbort()
    SEEN.clear()
    txn = db.txn_manager.begin()
    db.deref(ptr)
    db.txn_manager.abort(txn, explicit=False)
    assert SEEN == []


def test_composite_spanning_poke_and_commit(any_engine_db):
    """Transaction events participate in composite expressions."""
    db = any_engine_db
    with db.transaction():
        obj = db.pnew(Watched)
        ptr = obj.ptr
        obj.PokeThenCommit()
    SEEN.clear()
    with db.transaction():
        db.deref(ptr).poke()
    assert "poke-then-commit" in SEEN
    SEEN.clear()
    # Without a poke immediately before tcomplete, no fire.
    with db.transaction():
        _ = db.deref(ptr).v
    assert "poke-then-commit" not in SEEN


def test_tcomplete_effects_are_committed(any_engine_db):
    db = any_engine_db

    class Stamped(Persistent):
        stamps = field(int, default=0)
        __events__ = ["before tcomplete"]
        __triggers__ = [
            trigger(
                "Stamp",
                "before tcomplete",
                action=lambda self, ctx: self.stamp(),
                perpetual=True,
            )
        ]

        def stamp(self):
            self.stamps += 1

    with db.transaction():
        obj = db.pnew(Stamped)
        ptr = obj.ptr
        obj.Stamp()
    with db.transaction():
        db.deref(ptr)
    with db.transaction():
        assert db.deref(ptr).stamps >= 1


def test_tcomplete_trigger_can_veto_commit(any_engine_db):
    db = any_engine_db

    class Vetoer(Persistent):
        v = field(int, default=0)
        __events__ = ["before tcomplete"]
        __masks__ = {"bad": lambda self: self.v < 0}
        __triggers__ = [
            trigger(
                "Veto",
                "before tcomplete & bad",
                action=lambda self, ctx: ctx.tabort("invalid state at commit"),
                perpetual=True,
            )
        ]

    with db.transaction():
        obj = db.pnew(Vetoer)
        ptr = obj.ptr
        obj.Veto()
    with db.transaction():
        db.deref(ptr).v = -1  # commit-time constraint catches this
    with db.transaction():
        assert db.deref(ptr).v == 0
