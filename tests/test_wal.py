"""Write-ahead log tests: framing, torn tails, inverses."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WALError
from repro.storage.wal import LogRecord, LogRecordKind, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "test.wal"))
    yield log
    log.close()


def test_append_assigns_increasing_lsns(wal):
    r1 = wal.append(1, LogRecordKind.BEGIN)
    r2 = wal.append(1, LogRecordKind.INSERT, 7, b"", b"data")
    assert r2.lsn == r1.lsn + 1


def test_replay_returns_appended_records(wal):
    wal.append(1, LogRecordKind.BEGIN)
    wal.append(1, LogRecordKind.UPDATE, 5, b"old", b"new")
    wal.append(1, LogRecordKind.COMMIT)
    records = list(wal.replay())
    assert [r.kind for r in records] == [
        LogRecordKind.BEGIN,
        LogRecordKind.UPDATE,
        LogRecordKind.COMMIT,
    ]
    assert records[1].rid == 5
    assert records[1].before == b"old"
    assert records[1].after == b"new"


def test_lsn_continues_after_reopen(tmp_path):
    path = str(tmp_path / "reopen.wal")
    log = WriteAheadLog(path)
    last = log.append(1, LogRecordKind.BEGIN).lsn
    log.close()
    log2 = WriteAheadLog(path)
    assert log2.append(2, LogRecordKind.BEGIN).lsn == last + 1
    log2.close()


def test_torn_tail_is_ignored(tmp_path):
    path = str(tmp_path / "torn.wal")
    log = WriteAheadLog(path)
    log.append(1, LogRecordKind.BEGIN)
    log.append(1, LogRecordKind.INSERT, 3, b"", b"payload")
    log.close()
    # Simulate a crash mid-append: chop bytes off the end.
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size - 4)
    log2 = WriteAheadLog(path)
    records = list(log2.replay())
    assert [r.kind for r in records] == [LogRecordKind.BEGIN]
    log2.close()


def test_corrupt_crc_stops_replay(tmp_path):
    path = str(tmp_path / "corrupt.wal")
    log = WriteAheadLog(path)
    log.append(1, LogRecordKind.BEGIN)
    log.append(1, LogRecordKind.INSERT, 3, b"", b"payload")
    log.close()
    with open(path, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        last = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([last[0] ^ 0xFF]))
    log2 = WriteAheadLog(path)
    assert [r.kind for r in log2.replay()] == [LogRecordKind.BEGIN]
    log2.close()


def test_truncate_empties_log(wal):
    wal.append(1, LogRecordKind.BEGIN)
    wal.truncate()
    assert list(wal.replay()) == []
    assert wal.append(2, LogRecordKind.BEGIN).lsn == 1


def test_append_after_close_raises(tmp_path):
    log = WriteAheadLog(str(tmp_path / "closed.wal"))
    log.close()
    with pytest.raises(WALError):
        log.append(1, LogRecordKind.BEGIN)


class TestInverse:
    def test_update_inverse_swaps_images(self):
        record = LogRecord(1, 9, LogRecordKind.UPDATE, 4, b"old", b"new")
        inverse = record.inverse()
        assert inverse.kind is LogRecordKind.UPDATE
        assert inverse.before == b"new"
        assert inverse.after == b"old"

    def test_insert_inverse_is_delete(self):
        record = LogRecord(1, 9, LogRecordKind.INSERT, 4, b"", b"data")
        inverse = record.inverse()
        assert inverse.kind is LogRecordKind.DELETE
        assert inverse.before == b"data"

    def test_delete_inverse_is_insert(self):
        record = LogRecord(1, 9, LogRecordKind.DELETE, 4, b"data", b"")
        inverse = record.inverse()
        assert inverse.kind is LogRecordKind.INSERT
        assert inverse.after == b"data"

    def test_commit_has_no_inverse(self):
        with pytest.raises(WALError):
            LogRecord(1, 9, LogRecordKind.COMMIT).inverse()

    def test_double_inverse_is_identity_on_images(self):
        record = LogRecord(1, 9, LogRecordKind.UPDATE, 4, b"a", b"b")
        twice = record.inverse().inverse()
        assert (twice.kind, twice.rid, twice.before, twice.after) == (
            record.kind,
            record.rid,
            record.before,
            record.after,
        )


@settings(max_examples=50, deadline=None)
@given(
    txid=st.integers(0, 2**32),
    rid=st.integers(-1, 2**40),
    before=st.binary(max_size=500),
    after=st.binary(max_size=500),
    kind=st.sampled_from(list(LogRecordKind)),
)
def test_record_encode_decode_roundtrip(txid, rid, before, after, kind):
    record = LogRecord(17, txid, kind, rid, before, after)
    encoded = record.encode()
    # Strip the frame header (length + crc) before decoding the payload.
    decoded = LogRecord.decode(encoded[8:])
    assert decoded == record


def test_interior_corruption_raises_with_salvage_info(tmp_path):
    """A bad frame with valid frames after it means committed history was
    damaged in place — replay must refuse, not silently drop the rest."""
    path = str(tmp_path / "interior.wal")
    log = WriteAheadLog(path)
    log.append(1, LogRecordKind.BEGIN)
    log.append(1, LogRecordKind.INSERT, 3, b"", b"payload")
    log.append(1, LogRecordKind.COMMIT)
    log.close()
    from repro.storage.wal import _FRAME

    with open(path, "r+b") as fh:
        fh.seek(_FRAME.size + 1)  # inside the first record's payload
        byte = fh.read(1)
        fh.seek(_FRAME.size + 1)
        fh.write(bytes([byte[0] ^ 0xFF]))

    # The scan runs as soon as the log is opened (to restore the LSN),
    # so even opening the damaged log refuses.
    with pytest.raises(WALError) as excinfo:
        WriteAheadLog(path)
    salvage = excinfo.value.salvage
    assert salvage["records_before"] == 0
    assert salvage["records_after"] == 2  # INSERT + COMMIT still decodable
    assert salvage["corrupt_offset"] == 0
    assert salvage["resync_offset"] > 0


def test_wal_crash_drops_everything_after_the_last_force(tmp_path):
    path = str(tmp_path / "crash.wal")
    log = WriteAheadLog(path)
    log.append(1, LogRecordKind.BEGIN)
    log.append(1, LogRecordKind.COMMIT)
    log.force()
    log.append(2, LogRecordKind.BEGIN)  # never forced: dies with the cache
    log.crash()

    log2 = WriteAheadLog(path)
    assert [r.kind for r in log2.replay()] == [
        LogRecordKind.BEGIN,
        LogRecordKind.COMMIT,
    ]
    log2.close()
