"""Stream-generator and error-hierarchy tests."""

import collections

import pytest

import repro.errors as errors
from repro.workloads.streams import generate_stream, interleave_pattern


class TestGenerateStream:
    def test_deterministic_per_seed(self):
        a = generate_stream(["A", "B"], 100, seed=1)
        b = generate_stream(["A", "B"], 100, seed=1)
        c = generate_stream(["A", "B"], 100, seed=2)
        assert a == b
        assert a != c

    def test_length_and_alphabet(self):
        stream = generate_stream(["x", "y", "z"], 500, seed=3)
        assert len(stream) == 500
        assert set(stream) <= {"x", "y", "z"}

    def test_zipf_skews_to_first_ranks(self):
        stream = generate_stream(list("ABCDEFGH"), 5000, seed=4, dist="zipf")
        counts = collections.Counter(stream)
        assert counts["A"] > counts["H"] * 3

    def test_bursty_has_runs(self):
        stream = generate_stream(["A", "B", "C"], 2000, seed=5, dist="bursty")
        runs = sum(1 for i in range(1, len(stream)) if stream[i] == stream[i - 1])
        uniform = generate_stream(["A", "B", "C"], 2000, seed=5)
        uniform_runs = sum(
            1 for i in range(1, len(uniform)) if uniform[i] == uniform[i - 1]
        )
        assert runs > uniform_runs * 1.5

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            generate_stream([], 10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            generate_stream(["A"], -1)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate_stream(["A"], 10, dist="exotic")

    def test_zero_length(self):
        assert generate_stream(["A"], 0) == []


class TestInterleavePattern:
    def test_pattern_spliced_at_rate(self):
        background = ["x"] * 10
        result = interleave_pattern(background, ["A", "B"], every=5)
        assert result == ["x"] * 5 + ["A", "B"] + ["x"] * 5 + ["A", "B"]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            interleave_pattern(["x"], ["A"], every=0)


class TestErrorHierarchy:
    def test_all_library_errors_are_ode_errors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.errors"
                and obj is not errors.OdeError
                and obj is not errors.TransactionAbort
                and obj is not errors.TransientIOError
            ):
                assert issubclass(obj, errors.OdeError), name

    def test_tabort_is_not_an_ode_error(self):
        """tabort is control flow, not a failure — catching OdeError must
        not swallow it."""
        assert not issubclass(errors.TransactionAbort, errors.OdeError)

    def test_transient_io_error_is_an_os_error(self):
        """Injected I/O hiccups must flow through the same retry paths as
        real OSError — that is the whole point of injecting them."""
        assert issubclass(errors.TransientIOError, OSError)
        assert not issubclass(errors.TransientIOError, errors.OdeError)

    def test_injected_crash_is_uncatchable_as_exception(self):
        """A simulated dead process must not be resurrected by an
        ``except Exception`` cleanup path."""
        assert not issubclass(errors.InjectedCrashError, Exception)
        assert issubclass(errors.InjectedCrashError, BaseException)

    def test_deadlock_error_carries_cycle(self):
        err = errors.DeadlockError(3, (3, 5, 3))
        assert err.txid == 3
        assert "3 -> 5 -> 3" in str(err)

    def test_constraint_violation_message(self):
        err = errors.ConstraintViolationError("non_negative", "balance dipped")
        assert "non_negative" in str(err)
        assert "balance dipped" in str(err)

    def test_parse_error_points_at_position(self):
        err = errors.EventParseError("bad token", "A , , B", 4)
        assert "^" in str(err)
